package harness

import (
	"fmt"

	"metaupdate/fsim"
	"metaupdate/internal/sim"
	"metaupdate/internal/workload"
)

// Table1 reproduces the paper's table 1: scheme comparison under the
// 4-user copy benchmark, with and without allocation initialization
// (No Order only without, as in the paper).
func Table1(cfg Config) Table {
	t := Table{
		Title: "Table 1: scheme comparison, 4-user copy",
		Note: "paper shape: NoOrder fastest; SoftUpdates within a few % of NoOrder; alloc-init cost\n" +
			"ranges from ~4% (Soft Updates) to ~87% (Conventional)",
		Columns: []string{"Scheme", "AllocInit", "Elapsed (s)", "% of NoOrder",
			"CPU (s)", "Disk requests", "Avg response (ms)"},
	}
	type rowSpec struct {
		v         variant
		allocInit bool
	}
	var specs []rowSpec
	for _, s := range []fsim.Scheme{fsim.Conventional, fsim.SchedulerFlag,
		fsim.SchedulerChains, fsim.SoftUpdates} {
		for _, ai := range []bool{false, true} {
			specs = append(specs, rowSpec{schemeVariant(s, ai), ai})
		}
	}
	specs = append(specs, rowSpec{schemeVariant(fsim.NoOrder, false), false})

	// Baseline first so percentages can be computed.
	var baseline sim.Duration
	results := make([]copyStats, len(specs))
	for i := len(specs) - 1; i >= 0; i-- {
		cp, _ := copyBench(specs[i].v.opt, 4, cfg.Scale, false)
		results[i] = cp
		if specs[i].v.opt.Scheme == fsim.NoOrder {
			baseline = cp.elapsed
		}
	}
	for i, spec := range specs {
		cp := results[i]
		ai := "N"
		if spec.allocInit {
			ai = "Y"
		}
		t.AddRow(spec.v.opt.Scheme.String(), ai, secs(cp.elapsed), pct(cp.elapsed, baseline),
			secs(cp.stats.CPUTime), fmt.Sprintf("%d", cp.stats.DiskRequests),
			fmt.Sprintf("%.1f", cp.stats.AvgResponseMS))
	}
	return t
}

// schemeVariant builds a section 5 configuration with explicit alloc-init.
func schemeVariant(s fsim.Scheme, allocInit bool) variant {
	opt := fsim.Options{Scheme: s, Explicit: true, AllocInit: allocInit}
	switch s {
	case fsim.SchedulerFlag:
		opt.Sem, opt.NR, opt.CB = fsim.SemPart, true, true
	case fsim.SchedulerChains:
		opt.CB = true
	}
	return variant{s.String(), opt}
}

// Table2 reproduces table 2: scheme comparison under the 4-user remove
// benchmark (allocation initialization per the section 5 defaults).
func Table2(cfg Config) Table {
	t := Table{
		Title: "Table 2: scheme comparison, 4-user remove",
		Note: "paper shape: Conventional ~10x NoOrder; SoftUpdates *faster* than NoOrder (deferred\n" +
			"removal); order-of-magnitude fewer disk requests for SoftUpdates/NoOrder",
		Columns: []string{"Scheme", "Elapsed (s)", "% of NoOrder", "CPU (s)",
			"Disk requests", "Avg response (ms)"},
	}
	var baseline sim.Duration
	variants := fiveSchemes(nil)
	results := make([]copyStats, len(variants))
	for i := len(variants) - 1; i >= 0; i-- {
		_, rm := copyBench(variants[i].opt, 4, cfg.Scale, true)
		results[i] = rm
		if variants[i].opt.Scheme == fsim.NoOrder {
			baseline = rm.elapsed
		}
	}
	for i, v := range variants {
		rm := results[i]
		t.AddRow(v.name, secs2(rm.elapsed), pct(rm.elapsed, baseline),
			secs2(rm.stats.CPUTime), fmt.Sprintf("%d", rm.stats.DiskRequests),
			fmt.Sprintf("%.1f", rm.stats.AvgResponseMS))
	}
	return t
}

// Table3 reproduces table 3: the Andrew benchmark's five phases under each
// scheme.
func Table3(cfg Config) Table {
	t := Table{
		Title: "Table 3: Andrew benchmark (seconds per phase)",
		Note: "paper shape: phases 1-2 favor the non-conventional schemes; phases 3-4 are\n" +
			"practically indistinguishable; the compile phase dominates the total",
		Columns: []string{"Scheme", "(1) MakeDir", "(2) Copy", "(3) ScanDir",
			"(4) ReadAll", "(5) Compile", "Total"},
	}
	andrew := workload.DefaultAndrew()
	for _, v := range fiveSchemes(nil) {
		sys := mustSystem(v.opt)
		var times workload.AndrewTimes
		sys.Run(func(p *fsim.Proc) {
			var err error
			times, err = andrew.Run(p, sys.FS, fsim.RootIno)
			if err != nil {
				panic(err)
			}
		})
		sys.Shutdown()
		t.AddRow(v.name, secs2(times.MakeDir), secs2(times.Copy), secs2(times.ScanDir),
			secs2(times.ReadAll), secs(times.Compile), secs(times.Total()))
	}
	return t
}

// ChainsAblation reproduces the section 3.2 comparison: the barrier
// fallback vs. tracked remove-dependencies for scheduler chains on the
// 4-user remove benchmark (the paper reports ~16% in favor of tracking).
func ChainsAblation(cfg Config) Table {
	t := Table{
		Title:   "Section 3.2 ablation: chains de-allocation handling, 4-user remove",
		Note:    "paper: the specific-dependency approach beats the barrier fallback by ~16%",
		Columns: []string{"Approach", "Elapsed (s)", "Avg response (ms)", "Disk requests"},
	}
	for _, v := range []variant{
		{"Barrier fallback", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true, CB: true, BarrierFrees: true}},
		{"Tracked dependencies", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true, CB: true}},
	} {
		_, rm := copyBench(v.opt, 4, cfg.Scale, true)
		t.AddRow(v.name, secs2(rm.elapsed), fmt.Sprintf("%.0f", rm.stats.AvgResponseMS),
			fmt.Sprintf("%d", rm.stats.DiskRequests))
	}
	return t
}

// CBAblation reproduces the section 3.3 note that block copying helps
// scheduler chains as well (26% on 4-user copy, 57% on 4-user remove).
func CBAblation(cfg Config) Table {
	t := Table{
		Title:   "Section 3.3 ablation: scheduler chains with and without block copying",
		Note:    "paper: -CB reduces chains elapsed time by 26% (copy) and 57% (remove)",
		Columns: []string{"Configuration", "Copy elapsed (s)", "Remove elapsed (s)"},
	}
	for _, v := range []variant{
		{"Chains", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true}},
		{"Chains-CB", fsim.Options{Scheme: fsim.SchedulerChains, Explicit: true, CB: true}},
	} {
		cp, rm := copyBench(v.opt, 4, cfg.Scale, true)
		t.AddRow(v.name, secs(cp.elapsed), secs2(rm.elapsed))
	}
	return t
}

// NVRAMComparison runs the section 7 forward-comparison the paper
// proposes: soft updates vs. NVRAM-protected metadata vs. the No Order
// bound, on the metadata-intensive copy+remove pair.
func NVRAMComparison(cfg Config) Table {
	t := Table{
		Title: "Section 7 extension: soft updates vs NVRAM vs No Order",
		Note: "paper's prediction: NVRAM gives slight improvements over soft updates (less syncer\n" +
			"work) at much higher hardware cost; both track the No Order bound",
		Columns: []string{"Scheme", "Copy elapsed (s)", "Remove elapsed (s)",
			"Disk requests", "CPU (s)"},
	}
	for _, v := range []variant{
		{"Soft Updates", fsim.Options{Scheme: fsim.SoftUpdates}},
		{"NVRAM", fsim.Options{Scheme: fsim.NVRAM}},
		{"No Order", fsim.Options{Scheme: fsim.NoOrder}},
	} {
		cp, rm := copyBench(v.opt, 4, cfg.Scale, true)
		t.AddRow(v.name, secs(cp.elapsed), secs2(rm.elapsed),
			fmt.Sprintf("%d", cp.stats.DiskRequests+rm.stats.DiskRequests),
			secs2(cp.stats.CPUTime+rm.stats.CPUTime))
	}
	return t
}

// CacheSweep is the DESIGN.md D-decision sensitivity study: how the
// soft-updates-vs-conventional gap depends on buffer cache size (the
// paper's machine had 44 MB usable; the gap narrows as the cache shrinks
// and the workload becomes read-dominated for every scheme).
func CacheSweep(cfg Config) Table {
	t := Table{
		Title:   "Sensitivity: 4-user copy elapsed (s) vs buffer cache size",
		Note:    "ablation for DESIGN.md; not a paper exhibit",
		Columns: []string{"Scheme", "8 MB", "16 MB", "24 MB", "32 MB"},
	}
	sizes := []int{8 << 20, 16 << 20, 24 << 20, 32 << 20}
	for _, s := range []fsim.Scheme{fsim.Conventional, fsim.SoftUpdates, fsim.NoOrder} {
		row := []string{s.String()}
		for _, cb := range sizes {
			opt := fsim.Options{Scheme: s, CacheBytes: cb}
			cp, _ := copyBench(opt, 4, cfg.Scale, false)
			row = append(row, secs(cp.elapsed))
		}
		t.AddRow(row...)
	}
	return t
}

// Experiments maps experiment names to runners producing tables.
var Experiments = map[string]func(cfg Config) []Table{
	"fig1":            func(c Config) []Table { return []Table{Fig1(c)} },
	"fig2":            func(c Config) []Table { return []Table{Fig2(c)} },
	"fig3":            func(c Config) []Table { return []Table{Fig3(c)} },
	"fig4":            func(c Config) []Table { return []Table{Fig4(c)} },
	"fig5":            Fig5,
	"fig6":            func(c Config) []Table { return []Table{Fig6(c)} },
	"table1":          func(c Config) []Table { return []Table{Table1(c)} },
	"table2":          func(c Config) []Table { return []Table{Table2(c)} },
	"table3":          func(c Config) []Table { return []Table{Table3(c)} },
	"chains-ablation": func(c Config) []Table { return []Table{ChainsAblation(c)} },
	"cb-ablation":     func(c Config) []Table { return []Table{CBAblation(c)} },
	"nvram":           func(c Config) []Table { return []Table{NVRAMComparison(c)} },
	"cache-sweep":     func(c Config) []Table { return []Table{CacheSweep(c)} },
}

// ExperimentNames lists the experiments in presentation order.
var ExperimentNames = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"table1", "table2", "table3", "chains-ablation", "cb-ablation", "nvram",
	"cache-sweep",
}
