package harness_test

import (
	"strings"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/harness"
)

// renderAll prints every table of an exhibit to one string.
func renderAll(tables []harness.Table) string {
	var sb strings.Builder
	for _, t := range tables {
		t.Fprint(&sb)
	}
	return sb.String()
}

// TestParallelDeterminism is the engine's core contract: a representative
// exhibit rendered with 1 worker and with 8 workers must be byte-equal.
// fig2 exercises the copy+remove cell kind end to end (prep, both
// benchmark phases, settle flushes) across five configurations.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	ex := harness.ExhibitByName["fig2"]
	serial := renderAll(ex.Tables(harness.Config{Scale: 0.05, Runner: harness.NewRunner(1)}))
	parallel := renderAll(ex.Tables(harness.Config{Scale: 0.05, Runner: harness.NewRunner(8)}))
	if serial != parallel {
		t.Fatalf("rendered tables differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
}

// TestMemoizedCellMatchesFreshRun pins memoization correctness: serving a
// cell from the memo must reproduce exactly what a fresh simulation of the
// same cell computes, and must not re-run it.
func TestMemoizedCellMatchesFreshRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	cell := harness.Cell{
		Kind: harness.CellFig5, Opt: fsim.Options{Scheme: fsim.SoftUpdates},
		Fig5: harness.Fig5CreateRemoves, Users: 2, TotalFiles: 200,
	}
	r := harness.NewRunner(2)
	cold := r.Get(cell)
	warm := r.Get(cell)
	fresh := harness.NewRunner(1).Get(cell)
	if cold.Throughput != warm.Throughput {
		t.Fatalf("memo hit changed the result: %v vs %v", cold.Throughput, warm.Throughput)
	}
	if cold.Throughput != fresh.Throughput {
		t.Fatalf("memoized result %v != fresh run %v", cold.Throughput, fresh.Throughput)
	}
	st := r.Stats()
	if st.Executed != 1 || st.Hits != 1 {
		t.Fatalf("runner stats = %+v, want 1 executed / 1 hit", st)
	}
}

// TestCrossExhibitSharing checks that exhibits declaring the same
// configuration share one simulation when run on a common runner: figure 1
// and figure 3 both contain the Part-NR(/CB) 4-user copy.
func TestCrossExhibitSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	r := harness.NewRunner(0)
	cfg := harness.Config{Scale: 0.02, Runner: r}
	shared := harness.ExhibitByName["fig1"].Tables(cfg)
	before := r.Stats().Executed
	_ = harness.ExhibitByName["fig3"].Tables(cfg)
	after := r.Stats()
	_ = shared
	ran := after.Executed - before
	if ran >= 4 {
		t.Fatalf("fig3 simulated %d of its 4 cells after fig1; expected the shared Part-NR/CB cell to memo-hit", ran)
	}
	if after.Hits == 0 {
		t.Fatal("no memo hits recorded across fig1+fig3")
	}
}

// TestCellsStableAcrossPasses guards the Build contract: declaring cells
// (recording pass) and assembling tables must request the same cells in
// the same order for every exhibit.
func TestCellsStableAcrossPasses(t *testing.T) {
	cfg := harness.Config{Scale: 0.02}
	for _, ex := range harness.Exhibits {
		a := ex.Cells(cfg)
		b := ex.Cells(cfg)
		if len(a) == 0 {
			t.Errorf("%s declares no cells", ex.Name)
			continue
		}
		if len(a) != len(b) {
			t.Errorf("%s: cell count varies between passes: %d vs %d", ex.Name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i].Fingerprint() != b[i].Fingerprint() {
				t.Errorf("%s: cell %d differs between passes", ex.Name, i)
			}
		}
	}
}
