package workload_test

import (
	"fmt"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
	"metaupdate/internal/sim"
	"metaupdate/internal/workload"
)

func newSys(t *testing.T, scheme fsim.Scheme) *fsim.System {
	t.Helper()
	sys, err := fsim.New(fsim.Options{
		Scheme:     scheme,
		DiskBytes:  128 << 20,
		CacheBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestTreeSpecSizes(t *testing.T) {
	ts := workload.PaperTree()
	sizes := ts.Sizes()
	if len(sizes) != 535 {
		t.Fatalf("%d files, want 535", len(sizes))
	}
	var total int64
	small := 0
	for _, s := range sizes {
		if s <= 0 {
			t.Fatal("non-positive size")
		}
		if s < 8192 {
			small++
		}
		total += int64(s)
	}
	if total < 14_000_000 || total > 14_700_000 {
		t.Fatalf("total = %d, want ~14.3 MB", total)
	}
	if small < 200 {
		t.Errorf("only %d files under 8 KB; distribution looks wrong", small)
	}
	// Deterministic.
	sizes2 := workload.PaperTree().Sizes()
	for i := range sizes {
		if sizes[i] != sizes2[i] {
			t.Fatal("sizes not deterministic")
		}
	}
}

func TestBuildCopyRemoveRoundTrip(t *testing.T) {
	sys := newSys(t, fsim.SoftUpdates)
	ts := workload.SmallTree()
	sys.Run(func(p *fsim.Proc) {
		if _, err := ts.Build(p, sys.FS, fsim.RootIno, "src"); err != nil {
			t.Fatal(err)
		}
		if err := workload.CopyTree(p, sys.FS, fsim.RootIno, "src", fsim.RootIno, "dst"); err != nil {
			t.Fatal(err)
		}
		// Copied tree has the same file count and bytes.
		srcFiles, srcBytes := treeStats(t, p, sys.FS, "src")
		dstFiles, dstBytes := treeStats(t, p, sys.FS, "dst")
		if srcFiles != ts.Files || dstFiles != srcFiles || dstBytes != srcBytes {
			t.Fatalf("copy mismatch: src %d/%d dst %d/%d", srcFiles, srcBytes, dstFiles, dstBytes)
		}
		if err := workload.RemoveTree(p, sys.FS, fsim.RootIno, "dst"); err != nil {
			t.Fatal(err)
		}
		if err := workload.RemoveTree(p, sys.FS, fsim.RootIno, "src"); err != nil {
			t.Fatal(err)
		}
		sys.FS.Sync(p)
		ents, _ := sys.FS.ReadDir(p, fsim.RootIno)
		if len(ents) != 0 {
			t.Fatalf("%d entries left in root", len(ents))
		}
	})
	// Everything freed: fsck must be clean with no leaks.
	sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
	rep := fsck.Check(sys.Disk.Image())
	if len(rep.Findings) != 0 {
		t.Fatalf("fsck after full cleanup: %v", rep.Findings)
	}
}

func treeStats(t *testing.T, p *fsim.Proc, fs *ffs.FS, name string) (files int, bytes uint64) {
	t.Helper()
	root, err := fs.Lookup(p, fsim.RootIno, name)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(dir ffs.Ino)
	walk = func(dir ffs.Ino) {
		ents, err := fs.ReadDir(p, dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.Ftype == ffs.FtypeDir {
				walk(e.Ino)
			} else {
				ip, err := fs.Stat(p, e.Ino)
				if err != nil {
					t.Fatal(err)
				}
				files++
				bytes += ip.Size
			}
		}
	}
	walk(root)
	return files, bytes
}

func TestCreateRemoveLoops(t *testing.T) {
	sys := newSys(t, fsim.NoOrder)
	sys.Run(func(p *fsim.Proc) {
		dir, _ := sys.FS.Mkdir(p, fsim.RootIno, "bench")
		if err := workload.CreateFiles(p, sys.FS, dir, 50, 1024); err != nil {
			t.Fatal(err)
		}
		ents, _ := sys.FS.ReadDir(p, dir)
		if len(ents) != 50 {
			t.Fatalf("%d files after CreateFiles", len(ents))
		}
		if err := workload.RemoveFiles(p, sys.FS, dir, 50); err != nil {
			t.Fatal(err)
		}
		if err := workload.CreateRemoveFiles(p, sys.FS, dir, 50, 1024); err != nil {
			t.Fatal(err)
		}
		ents, _ = sys.FS.ReadDir(p, dir)
		if len(ents) != 0 {
			t.Fatalf("%d files after churn", len(ents))
		}
	})
}

func TestAndrewPhases(t *testing.T) {
	sys := newSys(t, fsim.SoftUpdates)
	var times workload.AndrewTimes
	sys.Run(func(p *fsim.Proc) {
		var err error
		times, err = workload.DefaultAndrew().Run(p, sys.FS, fsim.RootIno)
		if err != nil {
			t.Fatal(err)
		}
	})
	if times.MakeDir <= 0 || times.Copy <= 0 || times.ScanDir <= 0 ||
		times.ReadAll <= 0 || times.Compile <= 0 {
		t.Fatalf("zero phase times: %+v", times)
	}
	// The compile phase must dominate, as in the paper.
	if times.Compile < times.Total()/2 {
		t.Errorf("compile (%v) does not dominate total (%v)", times.Compile, times.Total())
	}
	if times.Total() > 400*sim.Second {
		t.Errorf("Andrew total %v wildly above the paper's ~290 s", times.Total())
	}
}

func TestSdetScriptRunsAndCleansUp(t *testing.T) {
	sys := newSys(t, fsim.SoftUpdates)
	sys.Run(func(p *fsim.Proc) {
		if err := workload.DefaultSdet().RunScript(p, sys.FS, fsim.RootIno, 0, 0); err != nil {
			t.Fatal(err)
		}
		home, err := sys.FS.Lookup(p, fsim.RootIno, "sdet0")
		if err != nil {
			t.Fatal(err)
		}
		ents, _ := sys.FS.ReadDir(p, home)
		for _, e := range ents {
			if e.Ftype != ffs.FtypeDir {
				t.Fatalf("file %q left behind", e.Name)
			}
		}
	})
}

func TestSdetDeterministic(t *testing.T) {
	run := func() fsim.Duration {
		sys := newSys(t, fsim.Conventional)
		return sys.Run(func(p *fsim.Proc) {
			if err := workload.DefaultSdet().RunScript(p, sys.FS, fsim.RootIno, 0, 3); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("Sdet not deterministic: %v vs %v", a, b)
	}
}

func TestConcurrentSdetScripts(t *testing.T) {
	sys := newSys(t, fsim.SoftUpdates)
	sdet := workload.DefaultSdet()
	var bin ffs.Ino
	sys.Run(func(p *fsim.Proc) {
		var err error
		bin, err = sdet.SetupBinaries(p, sys.FS, fsim.RootIno)
		if err != nil {
			t.Fatal(err)
		}
	})
	each, wall := sys.RunUsers(4, func(p *fsim.Proc, u int) {
		if err := sdet.RunScript(p, sys.FS, fsim.RootIno, bin, u); err != nil {
			t.Error(err)
		}
	})
	for u, d := range each {
		if d <= 0 {
			t.Fatalf("user %d took %v", u, d)
		}
	}
	if wall <= 0 {
		t.Fatal("zero wall time")
	}
	_ = fmt.Sprintf("%v", wall)
}
