package workload

import (
	"fmt"

	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

// Andrew emulates the original Andrew file system benchmark (Howard et al.
// 1988) used in the paper's table 3: five phases over a small source tree.
// The original operates on ~70 files in ~5 directories totaling ~200 KB of
// C source, then compiles them. Command invocation overhead (fork/exec of
// 1994-era userland on a 33 MHz i486) dominates the small phases, so each
// simulated command charges ExecOverhead of CPU.
type Andrew struct {
	Dirs      int
	Files     int
	FileBytes int
	// ExecOverhead models fork+exec+page-in of one command.
	ExecOverhead sim.Duration
	// StatCPU is the userland cost of examining one file's status in the
	// scan phase (ls -l formatting, uid lookups — phase 3 is CPU-bound on
	// the paper's machine: ~4.1 s for the tree under every scheme).
	StatCPU sim.Duration
	// ScanCPU is the per-file cost of the read-every-byte phase's grep.
	ScanCPU sim.Duration
	// CompileCPU is the compiler+assembler CPU cost per source file; the
	// paper's compile phase runs ~276 s for the tree ("aggressive,
	// time-consuming compilation techniques and a slow CPU").
	CompileCPU sim.Duration
}

// DefaultAndrew returns the paper-calibrated configuration.
func DefaultAndrew() Andrew {
	return Andrew{
		Dirs:         20,
		Files:        70,
		FileBytes:    2900, // ~200 KB total
		ExecOverhead: 12 * sim.Millisecond,
		StatCPU:      25 * sim.Millisecond,
		ScanCPU:      30 * sim.Millisecond,
		CompileCPU:   3800 * sim.Millisecond,
	}
}

// AndrewTimes holds per-phase elapsed virtual time.
type AndrewTimes struct {
	MakeDir, Copy, ScanDir, ReadAll, Compile sim.Duration
}

// Total returns the benchmark total.
func (t AndrewTimes) Total() sim.Duration {
	return t.MakeDir + t.Copy + t.ScanDir + t.ReadAll + t.Compile
}

// Run executes the five phases under `parent` and returns per-phase times.
func (a Andrew) Run(p *sim.Proc, fs *ffs.FS, parent ffs.Ino) (AndrewTimes, error) {
	var t AndrewTimes
	cpu := fs.CPU()
	exec := func() { cpu.Use(p, a.ExecOverhead) }

	// Phase 1: create the directory tree.
	start := p.Now()
	root, err := fs.Mkdir(p, parent, "andrew")
	if err != nil {
		return t, err
	}
	dirs := []ffs.Ino{root}
	exec()
	for d := 1; d < a.Dirs; d++ {
		nd, err := fs.Mkdir(p, root, fmt.Sprintf("sub%d", d))
		if err != nil {
			return t, err
		}
		dirs = append(dirs, nd)
		exec()
	}
	t.MakeDir = p.Now() - start

	// Phase 2: copy the data files (source "master" files are synthesized
	// as writes; the original copies from another file system).
	start = p.Now()
	var files []ffs.Ino
	fileDirs := make([]ffs.Ino, 0, a.Files)
	for i := 0; i < a.Files; i++ {
		dir := dirs[i%len(dirs)]
		ino, err := fs.Create(p, dir, fmt.Sprintf("src%02d.c", i))
		if err != nil {
			return t, err
		}
		if err := fs.WriteAt(p, ino, 0, content(i, a.FileBytes)); err != nil {
			return t, err
		}
		files = append(files, ino)
		fileDirs = append(fileDirs, dir)
		if i%8 == 0 {
			exec() // cp is invoked per directory batch
		}
	}
	t.Copy = p.Now() - start

	// Phase 3: examine the status of every file (ls -lR / stat sweep).
	start = p.Now()
	for _, dir := range dirs {
		exec()
		ents, err := fs.ReadDir(p, dir)
		if err != nil {
			return t, err
		}
		for _, e := range ents {
			if _, err := fs.Stat(p, e.Ino); err != nil {
				return t, err
			}
			cpu.Use(p, a.StatCPU)
		}
	}
	// The original stats every file several times via find+ls.
	for _, ino := range files {
		if _, err := fs.Stat(p, ino); err != nil {
			return t, err
		}
		cpu.Use(p, a.StatCPU)
	}
	t.ScanDir = p.Now() - start

	// Phase 4: read every byte of every file (grep -r).
	start = p.Now()
	buf := make([]byte, ffs.BlockSize)
	for _, ino := range files {
		exec()
		var off uint64
		for {
			n, err := fs.ReadAt(p, ino, off, buf)
			if err != nil {
				return t, err
			}
			off += uint64(n)
			if n < len(buf) {
				break
			}
		}
		cpu.Use(p, a.ScanCPU) // scanning the bytes
	}
	t.ReadAll = p.Now() - start

	// Phase 5: compile. Each source file is read, chewed on by the
	// compiler, and produces an object file; a final link reads all the
	// objects and writes the binary.
	start = p.Now()
	perFile := a.CompileCPU
	objData := make([]byte, a.FileBytes*2) // object-file payload scratch, refilled per file
	for i, ino := range files {
		exec()
		var off uint64
		for {
			n, err := fs.ReadAt(p, ino, off, buf)
			if err != nil {
				return t, err
			}
			off += uint64(n)
			if n < len(buf) {
				break
			}
		}
		cpu.Use(p, perFile)
		obj, err := fs.Create(p, fileDirs[i], fmt.Sprintf("src%02d.o", i))
		if err != nil {
			return t, err
		}
		fillContent(objData, 1000+i)
		if err := fs.WriteAt(p, obj, 0, objData); err != nil {
			return t, err
		}
	}
	// Link step.
	exec()
	cpu.Use(p, 8*sim.Second)
	bin, err := fs.Create(p, root, "a.out")
	if err != nil {
		return t, err
	}
	if err := fs.WriteAt(p, bin, 0, content(9999, a.FileBytes*a.Files/2)); err != nil {
		return t, err
	}
	t.Compile = p.Now() - start
	return t, nil
}
