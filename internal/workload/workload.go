// Package workload implements the paper's benchmark workloads against the
// substrate file system:
//
//   - the synthetic "home directory" tree (535 files totaling 14.3 MB —
//     section 2) with deterministic pseudo-random sizes, plus recursive
//     copy and remove (the N-user copy/remove benchmarks);
//   - the 1 KB file create / remove / create-remove throughput loops of
//     figure 5;
//   - an emulation of the original Andrew benchmark's five phases
//     (table 3);
//   - an Sdet-like software-development script mix (figure 6).
//
// All workloads are deterministic given their seeds.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

// TreeSpec describes a synthetic directory tree.
type TreeSpec struct {
	Files      int
	TotalBytes int64
	Dirs       int
	Depth      int
	Seed       int64
}

// PaperTree matches the tree of the paper's copy/remove benchmarks:
// "535 files totaling 14.3 MB of storage taken from the first author's
// home directory".
func PaperTree() TreeSpec {
	return TreeSpec{Files: 535, TotalBytes: 14_300_000, Dirs: 36, Depth: 3, Seed: 1994}
}

// SmallTree is a scaled-down variant for quick tests and examples.
func SmallTree() TreeSpec {
	return TreeSpec{Files: 60, TotalBytes: 1_500_000, Dirs: 8, Depth: 2, Seed: 7}
}

// Sizes returns the deterministic per-file sizes: a clamped lognormal mix
// normalized to TotalBytes (most files a few KB, a handful large — a
// typical home directory).
func (ts TreeSpec) Sizes() []int {
	rng := rand.New(rand.NewSource(ts.Seed))
	raw := make([]float64, ts.Files)
	var sum float64
	for i := range raw {
		v := math.Exp(rng.NormFloat64()*1.4 + 9.0) // median ~8 KB
		if v < 300 {
			v = 300
		}
		if v > 1.2e6 {
			v = 1.2e6
		}
		raw[i] = v
		sum += v
	}
	sizes := make([]int, ts.Files)
	var total int64
	for i, v := range raw {
		sizes[i] = int(v / sum * float64(ts.TotalBytes))
		if sizes[i] < 128 {
			sizes[i] = 128
		}
		total += int64(sizes[i])
	}
	// Pad the last file so the total is exact.
	if diff := ts.TotalBytes - total; diff > 0 {
		sizes[ts.Files-1] += int(diff)
	}
	return sizes
}

// content fills a deterministic pattern derived from the file index.
func content(idx, n int) []byte {
	b := make([]byte, n)
	fillContent(b, idx)
	return b
}

// fillContent writes the deterministic pattern for file idx into b —
// the in-place form lets tree builders reuse one scratch buffer across
// all files instead of allocating per file.
func fillContent(b []byte, idx int) {
	x := uint32(idx)*2654435761 + 12345
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
}

// Build creates the tree under parent/name and returns its root directory.
// Files are distributed round-robin over a dir hierarchy Depth levels deep.
func (ts TreeSpec) Build(p *sim.Proc, fs *ffs.FS, parent ffs.Ino, name string) (ffs.Ino, error) {
	root, err := fs.Mkdir(p, parent, name)
	if err != nil {
		return 0, err
	}
	dirs := []ffs.Ino{root}
	for d := 1; d < ts.Dirs; d++ {
		parentDir := dirs[(d-1)/3] // branching factor 3
		nd, err := fs.Mkdir(p, parentDir, fmt.Sprintf("dir%03d", d))
		if err != nil {
			return 0, err
		}
		dirs = append(dirs, nd)
	}
	sizes := ts.Sizes()
	maxSize := 0
	for _, size := range sizes {
		if size > maxSize {
			maxSize = size
		}
	}
	// One scratch buffer serves every file: WriteAt copies the payload
	// into cache blocks, so the buffer is dead once the call returns.
	scratch := make([]byte, maxSize)
	for i, size := range sizes {
		dir := dirs[i%len(dirs)]
		ino, err := fs.Create(p, dir, fmt.Sprintf("file%04d", i))
		if err != nil {
			return 0, err
		}
		data := scratch[:size]
		fillContent(data, i)
		if err := fs.WriteAt(p, ino, 0, data); err != nil {
			return 0, err
		}
	}
	return root, nil
}

// CopyTree recursively copies the tree rooted at (srcParent, srcName) to
// (dstParent, dstName) — the per-user body of the N-user copy benchmark.
// Files are copied in 8 KB chunks through the file system, so the source
// is read through the buffer cache and the destination allocates as a real
// cp would.
func CopyTree(p *sim.Proc, fs *ffs.FS, srcParent ffs.Ino, srcName string, dstParent ffs.Ino, dstName string) error {
	src, err := fs.Lookup(p, srcParent, srcName)
	if err != nil {
		return err
	}
	dst, err := fs.Mkdir(p, dstParent, dstName)
	if err != nil {
		return err
	}
	// The copy scratch block is shared down the recursion: ReadAt fills it
	// and WriteAt copies it out, so no call retains a reference.
	buf := make([]byte, ffs.BlockSize)
	return copyDir(p, fs, src, dst, buf)
}

func copyDir(p *sim.Proc, fs *ffs.FS, src, dst ffs.Ino, buf []byte) error {
	ents, err := fs.ReadDir(p, src)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Ftype == ffs.FtypeDir {
			nd, err := fs.Mkdir(p, dst, e.Name)
			if err != nil {
				return err
			}
			if err := copyDir(p, fs, e.Ino, nd, buf); err != nil {
				return err
			}
			continue
		}
		ino, err := fs.Create(p, dst, e.Name)
		if err != nil {
			return err
		}
		var off uint64
		for {
			n, err := fs.ReadAt(p, e.Ino, off, buf)
			if err != nil {
				return err
			}
			if n == 0 {
				break
			}
			if err := fs.WriteAt(p, ino, off, buf[:n]); err != nil {
				return err
			}
			off += uint64(n)
			if n < len(buf) {
				break
			}
		}
	}
	return nil
}

// RemoveTree recursively deletes the tree at (parent, name) — the per-user
// body of the N-user remove benchmark.
func RemoveTree(p *sim.Proc, fs *ffs.FS, parent ffs.Ino, name string) error {
	ino, err := fs.Lookup(p, parent, name)
	if err != nil {
		return err
	}
	if err := removeChildren(p, fs, ino); err != nil {
		return err
	}
	return fs.Rmdir(p, parent, name)
}

func removeChildren(p *sim.Proc, fs *ffs.FS, dir ffs.Ino) error {
	ents, err := fs.ReadDir(p, dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Ftype == ffs.FtypeDir {
			if err := removeChildren(p, fs, e.Ino); err != nil {
				return err
			}
			if err := fs.Rmdir(p, dir, e.Name); err != nil {
				return err
			}
		} else {
			if err := fs.Unlink(p, dir, e.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// CreateFiles creates `count` files of `size` bytes named f<k> in dir —
// the figure 5a loop body.
func CreateFiles(p *sim.Proc, fs *ffs.FS, dir ffs.Ino, count, size int) error {
	data := content(0, size)
	for k := 0; k < count; k++ {
		ino, err := fs.Create(p, dir, fmt.Sprintf("f%d", k))
		if err != nil {
			return err
		}
		if err := fs.WriteAt(p, ino, 0, data); err != nil {
			return err
		}
	}
	return nil
}

// RemoveFiles removes the files CreateFiles made (figure 5b).
func RemoveFiles(p *sim.Proc, fs *ffs.FS, dir ffs.Ino, count int) error {
	for k := 0; k < count; k++ {
		if err := fs.Unlink(p, dir, fmt.Sprintf("f%d", k)); err != nil {
			return err
		}
	}
	return nil
}

// CreateRemoveFiles creates and immediately removes each file (figure 5c).
func CreateRemoveFiles(p *sim.Proc, fs *ffs.FS, dir ffs.Ino, count, size int) error {
	data := content(0, size)
	for k := 0; k < count; k++ {
		ino, err := fs.Create(p, dir, fmt.Sprintf("f%d", k))
		if err != nil {
			return err
		}
		if err := fs.WriteAt(p, ino, 0, data); err != nil {
			return err
		}
		if err := fs.Unlink(p, dir, fmt.Sprintf("f%d", k)); err != nil {
			return err
		}
	}
	return nil
}
