package workload

import (
	"fmt"
	"math/rand"

	"metaupdate/internal/ffs"
	"metaupdate/internal/sim"
)

// Sdet emulates the SPEC SDM Sdet benchmark of the paper's figure 6:
// randomly generated scripts of user commands "designed to emulate a
// typical software-development environment (e.g., editing, compiling, file
// creation and various UNIX utilities)", executed at increasing
// concurrency; the metric is scripts/hour.
type Sdet struct {
	CommandsPerScript int
	Seed              int64
	// ExecOverhead models the fork+exec CPU work of each command.
	ExecOverhead sim.Duration
	// Binaries is the number of shared command binaries; each exec pages
	// one in through the buffer cache, so concurrent scripts warm the
	// cache for each other — the overlap that makes SDET throughput rise
	// with concurrency.
	Binaries    int
	BinaryBytes int
}

// DefaultSdet returns the standard configuration.
func DefaultSdet() Sdet {
	return Sdet{
		CommandsPerScript: 120,
		Seed:              1981,
		ExecOverhead:      6 * sim.Millisecond,
		Binaries:          24,
		BinaryBytes:       40 << 10,
	}
}

// sdetCommand is one entry in the predetermined function mix.
type sdetCommand struct {
	name   string
	weight int
	run    func(s *sdetScript, p *sim.Proc) error
}

// sdetScript is the per-script execution state. buf and data are the
// script's scratch blocks — each script runs on one proc, so reads land in
// buf and write payloads are staged in data without per-command
// allocation. They stay distinct because the edit command reads into buf
// while writing fresh content.
type sdetScript struct {
	fs    *ffs.FS
	cpu   *sim.CPU
	rng   *rand.Rand
	home  ffs.Ino
	seq   int
	files []string // files currently existing in the home directory
	cfg   Sdet
	buf   []byte // read scratch
	data  []byte // write-payload scratch
}

func (s *sdetScript) newName(prefix string) string {
	s.seq++
	return fmt.Sprintf("%s%d", prefix, s.seq)
}

// fill returns n bytes of the deterministic content pattern for the
// script's current seq, staged in the reusable payload scratch.
func (s *sdetScript) fill(n int) []byte {
	if n > len(s.data) {
		s.data = make([]byte, n)
	}
	b := s.data[:n]
	fillContent(b, s.seq)
	return b
}

func (s *sdetScript) pickFile() (string, bool) {
	if len(s.files) == 0 {
		return "", false
	}
	return s.files[s.rng.Intn(len(s.files))], true
}

// The function mix, loosely after the published SDET mix: heavy on small
// file creation, editing and searching, with occasional compiles and
// directory operations.
var sdetMix = []sdetCommand{
	{"touch", 15, func(s *sdetScript, p *sim.Proc) error { // create small file
		name := s.newName("f")
		ino, err := s.fs.Create(p, s.home, name)
		if err != nil {
			return err
		}
		s.files = append(s.files, name)
		return s.fs.WriteAt(p, ino, 0, s.fill(500+s.rng.Intn(4000)))
	}},
	{"edit", 20, func(s *sdetScript, p *sim.Proc) error { // read-modify-write
		name, ok := s.pickFile()
		if !ok {
			return nil
		}
		ino, err := s.fs.Lookup(p, s.home, name)
		if err != nil {
			return nil
		}
		n, _ := s.fs.ReadAt(p, ino, 0, s.buf)
		s.cpu.Use(p, 10*sim.Millisecond) // editor startup + buffer work
		return s.fs.WriteAt(p, ino, uint64(n), s.fill(512))
	}},
	{"rm", 10, func(s *sdetScript, p *sim.Proc) error {
		if len(s.files) == 0 {
			return nil
		}
		i := s.rng.Intn(len(s.files))
		name := s.files[i]
		s.files = append(s.files[:i], s.files[i+1:]...)
		return s.fs.Unlink(p, s.home, name)
	}},
	{"cp", 10, func(s *sdetScript, p *sim.Proc) error {
		name, ok := s.pickFile()
		if !ok {
			return nil
		}
		src, err := s.fs.Lookup(p, s.home, name)
		if err != nil {
			return nil
		}
		dst := s.newName("c")
		ino, err := s.fs.Create(p, s.home, dst)
		if err != nil {
			return err
		}
		s.files = append(s.files, dst)
		n, _ := s.fs.ReadAt(p, src, 0, s.buf)
		return s.fs.WriteAt(p, ino, 0, s.buf[:n])
	}},
	{"cc", 8, func(s *sdetScript, p *sim.Proc) error { // small compile
		name, ok := s.pickFile()
		if !ok {
			return nil
		}
		ino, err := s.fs.Lookup(p, s.home, name)
		if err != nil {
			return nil
		}
		s.fs.ReadAt(p, ino, 0, s.buf)
		s.cpu.Use(p, 300*sim.Millisecond)
		obj := s.newName("o")
		oino, err := s.fs.Create(p, s.home, obj)
		if err != nil {
			return err
		}
		s.files = append(s.files, obj)
		return s.fs.WriteAt(p, oino, 0, s.fill(6000))
	}},
	{"ls", 15, func(s *sdetScript, p *sim.Proc) error {
		ents, err := s.fs.ReadDir(p, s.home)
		if err != nil {
			return err
		}
		s.cpu.Use(p, sim.Duration(len(ents))*sim.Millisecond)
		return nil
	}},
	{"grep", 12, func(s *sdetScript, p *sim.Proc) error { // read a few files
		buf := s.buf
		for i := 0; i < 3; i++ {
			name, ok := s.pickFile()
			if !ok {
				return nil
			}
			ino, err := s.fs.Lookup(p, s.home, name)
			if err != nil {
				continue
			}
			s.fs.ReadAt(p, ino, 0, buf)
			s.cpu.Use(p, 4*sim.Millisecond)
		}
		return nil
	}},
	{"mkdir-rmdir", 5, func(s *sdetScript, p *sim.Proc) error {
		name := s.newName("d")
		if _, err := s.fs.Mkdir(p, s.home, name); err != nil {
			return err
		}
		return s.fs.Rmdir(p, s.home, name)
	}},
	{"mv", 5, func(s *sdetScript, p *sim.Proc) error {
		name, ok := s.pickFile()
		if !ok {
			return nil
		}
		dst := s.newName("m")
		if err := s.fs.Rename(p, s.home, name, s.home, dst); err != nil {
			return nil
		}
		for i, f := range s.files {
			if f == name {
				s.files[i] = dst
			}
		}
		return nil
	}},
}

// SetupBinaries creates the shared command binaries under parent (once per
// system) and returns their directory. Call before running scripts and
// evict the cache to start cold, as a fresh boot would.
func (cfg Sdet) SetupBinaries(p *sim.Proc, fs *ffs.FS, parent ffs.Ino) (ffs.Ino, error) {
	bin, err := fs.Mkdir(p, parent, "bin")
	if err != nil {
		if lerr, ok := err.(error); ok && lerr == ffs.ErrExist {
			return fs.Lookup(p, parent, "bin")
		}
		return 0, err
	}
	for i := 0; i < cfg.Binaries; i++ {
		ino, err := fs.Create(p, bin, fmt.Sprintf("cmd%02d", i))
		if err != nil {
			return 0, err
		}
		if err := fs.WriteAt(p, ino, 0, content(9000+i, cfg.BinaryBytes)); err != nil {
			return 0, err
		}
	}
	fs.Sync(p)
	return bin, nil
}

// RunScript executes one script in its own home directory and returns any
// error. Scripts are deterministic per (Seed, scriptID). binDir (from
// SetupBinaries) holds the command binaries paged in on each exec; pass 0
// to skip paging.
func (cfg Sdet) RunScript(p *sim.Proc, fs *ffs.FS, parent ffs.Ino, binDir ffs.Ino, scriptID int) error {
	home, err := fs.Mkdir(p, parent, fmt.Sprintf("sdet%d", scriptID))
	if err != nil {
		return err
	}
	s := &sdetScript{
		fs:   fs,
		cpu:  fs.CPU(),
		rng:  rand.New(rand.NewSource(cfg.Seed + int64(scriptID)*7919)),
		home: home,
		cfg:  cfg,
		buf:  make([]byte, 8192),
		data: make([]byte, 8192),
	}
	total := 0
	for _, c := range sdetMix {
		total += c.weight
	}
	pagein := make([]byte, 16<<10)
	for i := 0; i < cfg.CommandsPerScript; i++ {
		s.cpu.Use(p, cfg.ExecOverhead)
		if binDir != 0 && cfg.Binaries > 0 {
			// Page in the command's binary (text pages shared across
			// scripts through the buffer cache).
			name := fmt.Sprintf("cmd%02d", s.rng.Intn(cfg.Binaries))
			if ino, err := fs.Lookup(p, binDir, name); err == nil {
				fs.ReadAt(p, ino, 0, pagein)
			}
		}
		pick := s.rng.Intn(total)
		for _, c := range sdetMix {
			pick -= c.weight
			if pick < 0 {
				if err := c.run(s, p); err != nil {
					return err
				}
				break
			}
		}
	}
	// Scripts end by cleaning their work area.
	for _, name := range s.files {
		fs.Unlink(p, s.home, name)
	}
	return nil
}
