package plot

import (
	"strings"
	"testing"
)

func TestBarChartRendersAllBars(t *testing.T) {
	c := BarChart{
		Title: "elapsed",
		Unit:  "s",
		Bars: []Bar{
			{"Conventional", 80.2},
			{"Soft Updates", 6.7},
			{"No Order", 7.6},
		},
	}
	var sb strings.Builder
	c.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"Conventional", "Soft Updates", "No Order", "80.2", "6.7", "elapsed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The largest value owns the longest bar.
	lines := strings.Split(out, "\n")
	longest, conv := 0, 0
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > longest {
			longest = n
		}
		if strings.Contains(l, "Conventional") {
			conv = n
		}
	}
	if conv != longest {
		t.Fatalf("largest value does not have the longest bar:\n%s", out)
	}
}

func TestBarChartTinyValuesVisible(t *testing.T) {
	c := BarChart{Title: "t", Bars: []Bar{{"big", 1000}, {"tiny", 0.5}}}
	var sb strings.Builder
	c.Fprint(&sb)
	for _, l := range strings.Split(sb.String(), "\n") {
		if strings.Contains(l, "tiny") && !strings.Contains(l, "#") {
			t.Fatal("non-zero value rendered with no bar")
		}
	}
}

func TestBarChartAllZeros(t *testing.T) {
	c := BarChart{Title: "z", Bars: []Bar{{"a", 0}, {"b", 0}}}
	var sb strings.Builder
	c.Fprint(&sb) // must not divide by zero
	if !strings.Contains(sb.String(), "a") {
		t.Fatal("labels missing")
	}
}

func TestLineChartRendersSeriesAndLegend(t *testing.T) {
	c := LineChart{
		Title:   "throughput",
		XLabels: []string{"1", "2", "4", "8"},
		YUnit:   "files/s",
		Series: []Series{
			{"No Order", []float64{20, 35, 50, 60}},
			{"Conventional", []float64{18, 19, 20, 20}},
		},
	}
	var sb strings.Builder
	c.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"throughput", "No Order", "Conventional", "files/s", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// The rising series' marker must appear above the flat one somewhere
	// in the grid (grid rows are the ones containing " |").
	starRow, oRow := -1, -1
	for i, l := range strings.Split(out, "\n") {
		bar := strings.Index(l, "|")
		if bar < 0 {
			continue
		}
		grid := l[bar:]
		if starRow == -1 && strings.Contains(grid, "*") {
			starRow = i
		}
		if oRow == -1 && strings.Contains(grid, "o") {
			oRow = i
		}
	}
	if starRow == -1 || oRow == -1 || starRow > oRow {
		t.Fatalf("series rows wrong (star %d, o %d):\n%s", starRow, oRow, out)
	}
}

func TestLineChartEmptyX(t *testing.T) {
	c := LineChart{Title: "e"}
	var sb strings.Builder
	c.Fprint(&sb) // no panic, no output
	if sb.Len() != 0 {
		t.Fatal("expected no output for empty chart")
	}
}
