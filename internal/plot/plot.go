// Package plot renders small ASCII charts for the experiment harness, so
// the paper's figures come back as figures: horizontal bar charts for the
// elapsed-time comparisons (figures 1-4) and multi-series line charts for
// the throughput curves (figures 5-6).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one horizontal bar.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders labeled horizontal bars scaled to width columns.
type BarChart struct {
	Title string
	Unit  string
	Width int // bar area width in characters (default 50)
	Bars  []Bar
}

// Fprint renders the chart.
func (c *BarChart) Fprint(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for _, b := range c.Bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if max == 0 {
		max = 1
	}
	fmt.Fprintf(w, "\n%s\n", c.Title)
	for _, b := range c.Bars {
		n := int(b.Value / max * float64(width))
		if n < 1 && b.Value > 0 {
			n = 1
		}
		fmt.Fprintf(w, "  %-*s |%s %.4g %s\n", labelW, b.Label,
			strings.Repeat("#", n), b.Value, c.Unit)
	}
}

// Series is one line in a line chart.
type Series struct {
	Name   string
	Points []float64 // y values, one per shared x position
}

// LineChart renders multiple series over shared x labels on a character
// grid, one marker letter per series.
type LineChart struct {
	Title   string
	XLabels []string
	YUnit   string
	Height  int // grid height in rows (default 12)
	Series  []Series
}

var markers = []byte{'*', 'o', '+', 'x', '@', '%', '&', '$'}

// Fprint renders the chart.
func (c *LineChart) Fprint(w io.Writer) {
	height := c.Height
	if height <= 0 {
		height = 12
	}
	nx := len(c.XLabels)
	if nx == 0 {
		return
	}
	var ymax float64
	for _, s := range c.Series {
		for _, v := range s.Points {
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	// Round the axis top up to 2 significant digits for readable ticks.
	mag := math.Pow(10, math.Floor(math.Log10(ymax)))
	ymax = math.Ceil(ymax/mag*10) / 10 * mag

	colw := 8
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", nx*colw))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for xi, v := range s.Points {
			if xi >= nx {
				break
			}
			row := height - 1 - int(v/ymax*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := xi*colw + colw/2
			grid[row][col] = m
		}
	}
	fmt.Fprintf(w, "\n%s\n", c.Title)
	for i, row := range grid {
		y := ymax * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(w, "  %8.4g |%s\n", y, strings.TrimRight(string(row), " "))
	}
	fmt.Fprintf(w, "  %8s +%s\n", "", strings.Repeat("-", nx*colw))
	var xl strings.Builder
	for _, l := range c.XLabels {
		xl.WriteString(fmt.Sprintf("%-*s", colw, l))
	}
	fmt.Fprintf(w, "  %8s  %s(%s)\n", "", xl.String(), c.YUnit)
	for si, s := range c.Series {
		fmt.Fprintf(w, "  %c = %s\n", markers[si%len(markers)], s.Name)
	}
}
