// Package fsim is the public API of the metaupdate library: it assembles a
// complete simulated system — CPU, HP C2447-class disk, device driver with
// the selected scheduler-ordering mode, buffer cache with syncer daemon,
// and the FFS-like file system mounted with one of the paper's five
// metadata update schemes — and runs workloads against it in deterministic
// virtual time.
//
// Quick start:
//
//	sys, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates})
//	...
//	elapsed := sys.Run(func(p *fsim.Proc) {
//	    ino, _ := sys.FS.Create(p, fsim.RootIno, "hello")
//	    sys.FS.WriteAt(p, ino, 0, []byte("world"))
//	    sys.FS.Sync(p)
//	})
//
// Everything runs in virtual time; results are bit-for-bit reproducible.
package fsim

import (
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/core"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/fault"
	"metaupdate/internal/ffs"
	"metaupdate/internal/nvram"
	"metaupdate/internal/obs"
	"metaupdate/internal/ordering"
	"metaupdate/internal/sim"
)

// FaultSpec re-exports the fault plan parameters (see internal/fault).
type FaultSpec = fault.Spec

// Errors a faulted disk can surface through file system operations.
var (
	// ErrIO: the driver exhausted its retry budget on a transient/torn
	// fault.
	ErrIO = dev.ErrIO
	// ErrBadSector: a permanently bad sector could not be read or remapped.
	ErrBadSector = dev.ErrBadSector
)

// Re-exported core types, so most callers need only this package.
type (
	// Proc is a simulated process.
	Proc = sim.Proc
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Ino is an inode number.
	Ino = ffs.Ino
	// Dirent is a directory entry.
	Dirent = ffs.Dirent
	// Inode is a decoded inode.
	Inode = ffs.Inode
)

// RootIno is the root directory.
const RootIno = ffs.RootIno

// Convenient duration units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Scheme selects a metadata update ordering implementation.
type Scheme int

// The five schemes of the paper's performance comparison (section 5).
const (
	NoOrder Scheme = iota
	Conventional
	SchedulerFlag
	SchedulerChains
	SoftUpdates
	// NVRAM is the section 7 extension: delayed writes everywhere, with
	// the ordering-relevant states journaled to battery-backed RAM and
	// replayed over the media after a crash.
	NVRAM
	// Journaling is the classic write-ahead alternative the paper could not
	// benchmark: delayed writes everywhere, ordering-relevant states
	// appended to a wrapping on-disk log region as checksummed begin/commit
	// transactions, home-location writeback gated on the commit, and
	// crash-time recovery by journal replay (fsck.ReplayJournal).
	Journaling
	// AsyncDurability is the AsyncFS-inspired decoupling: operations become
	// visible immediately (scheduler-chains write pattern, so crash images
	// stay rule-consistent) while durability is acknowledged asynchronously
	// through a notification queue, bounded by an in-flight window with
	// batched group commit.
	AsyncDurability
)

// Schemes lists the paper's five in presentation order, then the two
// post-paper schemes (journaling and decoupled durability).
var Schemes = []Scheme{Conventional, SchedulerFlag, SchedulerChains, SoftUpdates, NoOrder, Journaling, AsyncDurability}

func (s Scheme) String() string {
	switch s {
	case NoOrder:
		return "No Order"
	case Conventional:
		return "Conventional"
	case SchedulerFlag:
		return "Scheduler Flag"
	case SchedulerChains:
		return "Scheduler Chains"
	case SoftUpdates:
		return "Soft Updates"
	case NVRAM:
		return "NVRAM"
	case Journaling:
		return "Journaling"
	case AsyncDurability:
		return "Async Durability"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// FlagSemantics re-exports the driver's ordering-flag semantics.
type FlagSemantics = dev.FlagSemantics

// Ordering-flag semantics (section 3.1).
const (
	SemFull = dev.SemFull
	SemBack = dev.SemBack
	SemPart = dev.SemPart
)

// Options configures a System. The zero value (plus a Scheme) reproduces
// the paper's configuration: Part-NR/CB for the scheduler schemes,
// allocation initialization for soft updates only.
type Options struct {
	Scheme Scheme

	// Flag-scheme knobs (section 3.1/3.3). Defaults: SemPart, NR and CB
	// both set (the Part-NR/CB configuration used in section 5). Set
	// Explicit to take the zero values literally instead.
	Sem      FlagSemantics
	NR       bool
	CB       bool
	Explicit bool

	// AllocInit enforces allocation initialization for regular file data.
	// Default (when !Explicit): true only for SoftUpdates, matching the
	// paper's figures.
	AllocInit bool

	// BarrierFrees selects the chains scheme's simpler de-allocation
	// fallback (the section 3.2 ablation).
	BarrierFrees bool

	// IgnoreOrdering makes the driver ignore the flag/chain information the
	// file system supplies (the paper's "Ignore" comparison point — same
	// write pattern, free re-ordering, no integrity).
	IgnoreOrdering bool

	// Sizes; zero values pick paper-scaled defaults.
	DiskBytes  int64 // materialized media (default 384 MB)
	FSBytes    int64 // formatted size (default DiskBytes)
	NInodes    uint32
	CacheBytes int // buffer cache (default 32 MB)

	// NVRAMBytes sizes the NVRAM log for Scheme == NVRAM (default 1 MB).
	NVRAMBytes int

	// JournalFrags sizes the on-disk journal region for Scheme ==
	// Journaling (default 128 fragments = 128 KB). Other schemes ignore it
	// and format without a journal, keeping their layouts byte-identical to
	// pre-journal images.
	JournalFrags int32

	// AsyncWindow / AsyncInterval tune Scheme == AsyncDurability: the
	// bounded in-flight window of operations awaiting a durability
	// notification (default 64) and the group-commit flush period
	// (default 25 ms).
	AsyncWindow   int
	AsyncInterval Duration

	SyncerFraction int // cache sweeps per full pass (default 30)
	Costs          ffs.Costs
	DiskParams     *disk.Params

	// Faults selects the deterministic fault plan injected at the media
	// layer (transient errors, permanent bad sectors, torn writes, latency
	// spikes). The zero value is a fault-free disk, byte-identical to runs
	// built before fault injection existed.
	Faults fault.Spec
	// MaxRetries / RetryBackoff / SpareSectors tune the driver's recovery
	// machinery (zero values take the dev package defaults). They only
	// matter when Faults is enabled.
	MaxRetries   int
	RetryBackoff Duration
	SpareSectors int

	// OpenLoop configures an open-loop scenario workload (internal/arrival
	// offered-load process + internal/scenario op stream) for RunOpenLoop.
	// The zero value is disabled; constructing a System ignores it, so it
	// is pure workload configuration, not machine configuration.
	OpenLoop OpenLoopSpec

	// Observe attaches the operation-span recorder (internal/obs): every
	// FS operation records a virtual-time span with a per-stage latency
	// breakdown, available as System.Obs. The recorder is a pure observer
	// — enabling it cannot change any simulation result — and costs
	// nothing when off (mdsim -opstats / -optrace set it).
	Observe bool
}

func (o *Options) setDefaults() {
	if !o.Explicit {
		switch o.Scheme {
		case SchedulerFlag:
			o.Sem, o.NR, o.CB = dev.SemPart, true, true
		case SchedulerChains:
			o.CB = true
		case SoftUpdates:
			o.AllocInit = true
		}
	}
	if o.Scheme == Journaling && o.JournalFrags == 0 {
		o.JournalFrags = 128
	}
	if o.Scheme == AsyncDurability {
		if o.AsyncWindow == 0 {
			o.AsyncWindow = ordering.DefaultAsyncWindow
		}
		if o.AsyncInterval == 0 {
			o.AsyncInterval = ordering.DefaultAsyncInterval
		}
	}
	if o.DiskBytes == 0 {
		o.DiskBytes = 384 << 20
	}
	if o.FSBytes == 0 {
		o.FSBytes = o.DiskBytes
	}
	if o.NInodes == 0 {
		o.NInodes = 16384
	}
	if o.CacheBytes == 0 {
		o.CacheBytes = 24 << 20
	}
	if o.DiskParams == nil {
		p := disk.HPC2447()
		o.DiskParams = &p
	}
}

// System is a fully assembled simulated machine with a mounted file system.
type System struct {
	Opt    Options
	Eng    *sim.Engine
	CPU    *sim.CPU
	Disk   *disk.Disk
	Driver *dev.Driver
	Cache  *cache.Cache
	FS     *ffs.FS
	Soft   *core.SoftUpdates // non-nil when Scheme == SoftUpdates
	NV     *nvram.Scheme     // non-nil when Scheme == NVRAM
	Jnl    *ordering.Journal // non-nil when Scheme == Journaling
	Async  *ordering.Async   // non-nil when Scheme == AsyncDurability
	Obs    *obs.Recorder     // non-nil when Options.Observe

	statsStart sim.Time
}

// schemeParts is one machine's ordering machinery, fresh per stack (an
// ordering instance carries per-mount state and is never shared between
// nodes).
type schemeParts struct {
	ord   ffs.Ordering
	dcfg  dev.Config
	soft  *core.SoftUpdates
	nvs   *nvram.Scheme
	jnl   *ordering.Journal
	async *ordering.Async
}

// schemeSetup instantiates opt.Scheme's ordering and driver config. It
// mutates opt where a scheme constrains the options (SoftUpdates forces
// CB off).
func schemeSetup(opt *Options) (schemeParts, error) {
	sp := schemeParts{dcfg: dev.Config{Mode: dev.ModeIgnore}}
	switch opt.Scheme {
	case NoOrder:
		sp.ord = ordering.NewNoOrder()
	case Conventional:
		sp.ord = ordering.NewConventional()
	case SchedulerFlag:
		sp.ord = ordering.NewFlag()
		sp.dcfg = dev.Config{Mode: dev.ModeFlag, Sem: opt.Sem, NR: opt.NR}
		if opt.IgnoreOrdering {
			sp.dcfg = dev.Config{Mode: dev.ModeIgnore}
		}
	case SchedulerChains:
		ch := ordering.NewChains()
		ch.BarrierFrees = opt.BarrierFrees
		sp.ord = ch
		sp.dcfg = dev.Config{Mode: dev.ModeChains}
		if opt.IgnoreOrdering {
			sp.dcfg = dev.Config{Mode: dev.ModeIgnore}
		}
	case SoftUpdates:
		// Soft updates substitutes rolled-back copies as write sources
		// itself; the -CB machinery's concurrent per-buffer snapshots
		// would break its covered-update tracking, so it is forced off.
		opt.CB = false
		sp.soft = core.New()
		sp.ord = sp.soft
	case NVRAM:
		sp.nvs = nvram.New(nvram.NewLog(opt.NVRAMBytes))
		sp.ord = sp.nvs
	case Journaling:
		// The journal's begin→commit→home ordering rides the driver's
		// explicit dependency lists; -CB is forced off so a journaled
		// buffer's eventual home write carries exactly the committed state
		// (modifications lock against in-flight writes).
		opt.CB = false
		sp.jnl = ordering.NewJournal()
		sp.ord = sp.jnl
		sp.dcfg = dev.Config{Mode: dev.ModeChains}
		if opt.IgnoreOrdering {
			sp.dcfg = dev.Config{Mode: dev.ModeIgnore}
		}
	case AsyncDurability:
		// Chains ordering underneath. -CB stays off by default: an
		// in-flight write then blocks modifications, which keeps the
		// notification bookkeeping trivially exact. The submit-time
		// crediting in ordering.Async is -CB-safe (a snapshot write
		// carries the buffer's state as of submission, so only waiters
		// registered by then are credited), so an Explicit configuration
		// may enable CB — the open-loop exhibits do, where the stall of
		// naming operations against the group-commit flusher's in-flight
		// writes would otherwise convoy the whole op stream.
		if !opt.Explicit {
			opt.CB = false
		}
		sp.async = ordering.NewAsync(opt.AsyncWindow, opt.AsyncInterval)
		sp.ord = sp.async
		sp.dcfg = dev.Config{Mode: dev.ModeChains}
		if opt.IgnoreOrdering {
			sp.dcfg = dev.Config{Mode: dev.ModeIgnore}
		}
	default:
		return schemeParts{}, fmt.Errorf("fsim: unknown scheme %v", opt.Scheme)
	}
	return sp, nil
}

// New formats a fresh file system and mounts it under the selected scheme.
func New(opt Options) (*System, error) {
	opt.setDefaults()

	parts, err := schemeSetup(&opt)
	if err != nil {
		return nil, err
	}
	ord, dcfg, soft, nvs := parts.ord, parts.dcfg, parts.soft, parts.nvs

	eng := sim.NewEngine()
	dsk := disk.New(*opt.DiskParams, opt.DiskBytes)
	jf := int32(0)
	if opt.Scheme == Journaling {
		jf = opt.JournalFrags
	}
	if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: opt.FSBytes, NInodes: opt.NInodes, JournalFrags: jf}); err != nil {
		return nil, err
	}
	dcfg.MaxRetries = opt.MaxRetries
	dcfg.RetryBackoff = opt.RetryBackoff
	dcfg.SpareSectors = opt.SpareSectors
	drv := dev.New(eng, dsk, dcfg)
	if opt.Faults.Enabled() {
		// The plan is compiled after Format, so the bad-sector set is a pure
		// function of (spec, disk size) and independent of mkfs traffic.
		dsk.SetFaults(fault.New(opt.Faults, dsk.Sectors()), opt.SpareSectors)
	}
	cpu := &sim.CPU{}
	c := cache.New(eng, drv, cpu, cache.Config{
		MaxBytes:       opt.CacheBytes,
		CB:             opt.CB,
		SyncerFraction: opt.SyncerFraction,
	})

	sys := &System{Opt: opt, Eng: eng, CPU: cpu, Disk: dsk, Driver: drv, Cache: c, Soft: soft, NV: nvs, Jnl: parts.jnl, Async: parts.async}
	if opt.Observe {
		sys.Obs = obs.New(eng)
	}
	eng.Spawn("mount", func(p *sim.Proc) {
		sys.FS, err = ffs.Mount(eng, cpu, c, ord,
			ffs.Config{AllocInit: opt.AllocInit, Costs: opt.Costs, Obs: sys.Obs}, p)
	})
	eng.Run()
	if err != nil {
		return nil, err
	}
	c.StartSyncer()
	return sys, nil
}

// Run executes fn as a simulated process and drives the engine until it
// finishes (daemon processes keep running in the background). It returns
// the virtual time fn took.
func (s *System) Run(fn func(p *Proc)) Duration {
	start := s.Eng.Now()
	done := false
	s.Eng.Spawn("main", func(p *Proc) {
		fn(p)
		done = true
	})
	s.Eng.RunWhile(func() bool { return !done })
	return s.Eng.Now() - start
}

// RunUsers executes fn concurrently for n "users" (the paper's benchmark
// structure) and returns each user's elapsed time plus the overall wall
// time, all in virtual time.
func (s *System) RunUsers(n int, fn func(p *Proc, user int)) (each []Duration, wall Duration) {
	start := s.Eng.Now()
	each = make([]Duration, n)
	var wg sim.WaitGroup
	wg.Add(n)
	for u := 0; u < n; u++ {
		u := u
		s.Eng.Spawn(fmt.Sprintf("user%d", u), func(p *Proc) {
			t0 := p.Now()
			fn(p, u)
			each[u] = p.Now() - t0
			wg.Done(s.Eng)
		})
	}
	done := false
	s.Eng.Spawn("join", func(p *Proc) {
		wg.Wait(p)
		done = true
	})
	s.Eng.RunWhile(func() bool { return !done })
	return each, s.Eng.Now() - start
}

// Shutdown stops the syncer daemon and drains the simulation so every
// process goroutine exits. Call it when done with a System: a parked
// daemon goroutine would otherwise retain the engine — and through it the
// materialized disk image — for the life of the Go process. The harness
// creates hundreds of Systems per experiment sweep, so this matters.
func (s *System) Shutdown() {
	s.Cache.StopSyncer()
	s.Eng.Run() // the syncer wakes once more, observes the stop, and exits
}

// Crash freezes the system at virtual time t (which must be in the future)
// and returns the crash-consistent media image: completed writes plus the
// sector-exact prefix of any write in flight. The image is an independent
// copy (disk.Disk.CloneImage), so callers may inspect or repair it without
// racing the — now unusable — system's backing store.
func (s *System) Crash(t Time) []byte {
	s.Eng.RunUntil(t)
	s.Driver.Crash(t)
	return s.Disk.CloneImage()
}

// Stats is a snapshot of system-wide counters for an experiment window.
type Stats struct {
	Elapsed       Duration
	CPUTime       Duration
	DiskRequests  int
	AvgServiceMS  float64 // paper's "disk access time"
	AvgResponseMS float64 // paper's "driver response time"
	CacheHits     int64
	CacheMisses   int64
	// Write-discipline and ordering counters (windowed by ResetStats):
	// Bwrite calls, Bdwrite calls, and requests the driver stalled on
	// mode-specific ordering edges (always zero for the ModeIgnore
	// schemes: No Order, Conventional, Soft Updates).
	SyncWrites     int64
	DelayedWrites  int64
	OrderingStalls int64
	// Faults is the driver's cumulative recovery activity (not windowed by
	// ResetStats; all zero on a fault-free disk).
	Faults dev.FaultStats
	// LostWrites counts dirty buffers the cache abandoned after repeated
	// write failures (cumulative; the graceful-degradation data-loss path).
	LostWrites int64
}

// FaultStats re-exports the driver's fault counters.
type FaultStats = dev.FaultStats

// ResetStats clears the measurement window.
func (s *System) ResetStats() {
	s.Driver.Trace.Reset()
	s.CPU.Used = 0
	s.Cache.Hits, s.Cache.Misses = 0, 0
	s.Cache.SyncWrites, s.Cache.DelayedWrites = 0, 0
	s.Driver.OrderingStalls = 0
	s.statsStart = s.Eng.Now()
}

// CollectStats returns the counters accumulated since the last ResetStats.
func (s *System) CollectStats() Stats {
	return Stats{
		Elapsed:        s.Eng.Now() - s.statsStart,
		CPUTime:        s.CPU.Used,
		DiskRequests:   s.Driver.Trace.Requests(),
		AvgServiceMS:   s.Driver.Trace.AvgServiceMS(),
		AvgResponseMS:  s.Driver.Trace.AvgResponseMS(),
		CacheHits:      s.Cache.Hits,
		CacheMisses:    s.Cache.Misses,
		SyncWrites:     s.Cache.SyncWrites,
		DelayedWrites:  s.Cache.DelayedWrites,
		OrderingStalls: s.Driver.OrderingStalls,
		Faults:         s.Driver.Faults,
		LostWrites:     s.Cache.LostWrites,
	}
}
