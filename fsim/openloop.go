package fsim

import (
	"fmt"

	"metaupdate/internal/arrival"
	"metaupdate/internal/scenario"
)

// ArrivalSpec re-exports the open-loop arrival-process parameters (see
// internal/arrival).
type ArrivalSpec = arrival.Spec

// Arrival process kinds.
const (
	Poisson = arrival.Poisson
	Bursty  = arrival.Bursty
)

// OpenLoopSpec configures an open-loop scenario run: which operation
// stream to offer, on what arrival schedule, and how the measurement
// window is framed. The zero value is disabled — the closed-loop status
// quo, so every pre-open-loop cell fingerprint is unchanged.
type OpenLoopSpec struct {
	// Scenario names the internal/scenario stream ("mail", "build",
	// "webcache").
	Scenario string
	// Arrival is the offered-load process; its PerSec enables the run.
	Arrival ArrivalSpec
	// Ops is the total number of arrivals; Warmup of them lead the
	// measured window.
	Ops    int
	Warmup int
	// MaxInFlight bounds admission (0 = unbounded open loop).
	MaxInFlight int
}

// Enabled reports whether the spec describes a run.
func (s OpenLoopSpec) Enabled() bool { return s.Arrival.Enabled() && s.Ops > 0 }

// String renders the spec canonically for harness cell fingerprints.
func (s OpenLoopSpec) String() string {
	if !s.Enabled() {
		return "off"
	}
	out := fmt.Sprintf("%s,arr{%s},ops%d,warm%d", s.Scenario, s.Arrival, s.Ops, s.Warmup)
	if s.MaxInFlight > 0 {
		out += fmt.Sprintf(",max%d", s.MaxInFlight)
	}
	return out
}

// runSpec lowers the options to the scenario driver's parameters.
func (s OpenLoopSpec) runSpec() scenario.RunSpec {
	return scenario.RunSpec{
		Arrival:     s.Arrival,
		Ops:         s.Ops,
		Warmup:      s.Warmup,
		MaxInFlight: s.MaxInFlight,
	}
}

// RunOpenLoop drives Opt.OpenLoop against the mounted file system:
// builds the scenario stream, creates its directory set, then offers
// operations on the arrival schedule until the last one completes. Call
// it on a fresh System; it composes with Shutdown like any workload.
func (s *System) RunOpenLoop() (scenario.Result, error) {
	spec := s.Opt.OpenLoop
	if !spec.Enabled() {
		return scenario.Result{}, fmt.Errorf("fsim: Options.OpenLoop is not enabled")
	}
	stream, err := scenario.New(spec.Scenario, spec.Arrival.Seed)
	if err != nil {
		return scenario.Result{}, err
	}
	target, err := scenario.SetupFS(s.Eng, s.FS, stream)
	if err != nil {
		return scenario.Result{}, err
	}
	return scenario.Drive(s.Eng, target, stream, spec.runSpec()), nil
}

// RunOpenLoop drives spec against the sharded metadata cluster (the
// metadata-only op mapping; see scenario.ClusterTarget). The spec is
// passed explicitly because DistOptions.Base describes per-node
// machines, not the client workload.
func (s *DistSystem) RunOpenLoop(spec OpenLoopSpec) (scenario.Result, error) {
	if !spec.Enabled() {
		return scenario.Result{}, fmt.Errorf("fsim: open-loop spec is not enabled")
	}
	stream, err := scenario.New(spec.Scenario, spec.Arrival.Seed)
	if err != nil {
		return scenario.Result{}, err
	}
	target, err := scenario.SetupCluster(s.Cluster, stream)
	if err != nil {
		return scenario.Result{}, err
	}
	return scenario.Drive(s.Exec, target, stream, spec.runSpec()), nil
}
