package fsim

import (
	"testing"
	"time"

	"metaupdate/internal/dmeta"
)

// BenchmarkDistCluster runs the 16-node sharded-metadata cell — the
// cluster-scale sweep unit the PDES engine exists for — serial and on a
// parallel LP group, and reports wall-clock events per second over the
// load phase (setup excluded). The parallel/serial ratio is what
// BENCH_4.json records and the CI bench gate watches on multi-core
// runners; on a single-core machine the ratio instead measures the
// synchronization overhead (it should stay near 1x).
func BenchmarkDistCluster(b *testing.B) {
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"serial", 0},
		{"parallel2", 2},
		{"parallel8", 8},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var events uint64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := NewDist(DistOptions{
					Base:  Options{Scheme: SoftUpdates},
					Nodes: 16, Seed: 99,
					EngineWorkers: mode.workers,
				})
				if err != nil {
					b.Fatalf("NewDist: %v", err)
				}
				executed := func() uint64 {
					if s.Group != nil {
						return s.Group.Executed()
					}
					return s.Eng.Executed()
				}
				e0 := executed()
				b.StartTimer()
				t0 := time.Now()
				s.Cluster.Load(dmeta.LoadSpec{Clients: 16, Ops: 150, Seed: 99})
				s.SyncAll()
				elapsed += time.Since(t0)
				b.StopTimer()
				events += executed() - e0
				s.Shutdown()
				b.StartTimer()
			}
			if elapsed > 0 {
				b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
			}
		})
	}
}
