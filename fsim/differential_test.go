package fsim_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/fsck"
)

// Differential crash-recovery test: run a scripted, seeded workload; crash
// it at several virtual instants; recover each image the way the paper
// prescribes (NVRAM replay where applicable, then fsck repair); and compare
// the recovered logical directory tree against a model of the no-crash run.
//
// The recovered tree must be a *consistent subset* of the no-crash state:
// every recovered path must have existed at some point of the operation
// sequence with the same type and no more than its maximum written size
// (recovery may truncate, never fabricate). For the synchronous-metadata
// scheme the suite additionally asserts *prefix* consistency: operations
// return only after their metadata is durable, so the visible files must
// correspond to a prefix of the operation order.

const (
	diffFiles   = 120
	diffDirName = "d"
)

func diffFileName(i int) string { return fmt.Sprintf("f%03d", i) }
func diffFileSize(i int) int    { return (i%4 + 1) * 2048 }

// diffWorkload is the scripted run: create diffFiles stamped files in one
// directory, then remove the even-numbered ones, in strict sequence.
func diffWorkload(sys *fsim.System) {
	sys.Eng.Spawn("diff", func(p *fsim.Proc) {
		fs := sys.FS
		dir, err := fs.Mkdir(p, fsim.RootIno, diffDirName)
		if err != nil {
			return
		}
		for i := 0; i < diffFiles; i++ {
			ino, err := fs.Create(p, dir, diffFileName(i))
			if err != nil {
				return
			}
			fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, diffFileSize(i)))
		}
		for i := 0; i < diffFiles; i += 2 {
			fs.Unlink(p, dir, diffFileName(i))
		}
	})
}

// recoveredTree crashes a fresh system running diffWorkload at the given
// instant, applies the scheme's recovery (NVRAM replay, then fsck repair),
// asserts the repaired image is integrity-clean, and returns its tree.
func recoveredTree(t *testing.T, opt fsim.Options, at fsim.Duration) (map[string]fsck.TreeEntry, fsim.Stats) {
	t.Helper()
	sys, err := fsim.New(opt)
	if err != nil {
		t.Fatalf("fsim.New(%v): %v", opt.Scheme, err)
	}
	diffWorkload(sys)
	img := sys.Crash(fsim.Time(at))
	st := sys.CollectStats()
	if sys.NV != nil {
		sys.NV.Log().Replay(img)
	}
	if sys.Jnl != nil {
		fsck.ReplayJournal(img)
	}
	fsck.Repair(img)
	if viol := fsck.Check(img).Violations(); len(viol) != 0 {
		t.Fatalf("image not clean after repair: %v", viol[0])
	}
	tree, err := fsck.Tree(fsck.Bytes(img))
	if err != nil {
		t.Fatalf("tree walk after repair: %v", err)
	}
	return tree, st
}

// checkSubsetOfRun asserts tree against the operation model: nothing in the
// recovered namespace may be something the run never produced.
func checkSubsetOfRun(t *testing.T, at fsim.Duration, tree map[string]fsck.TreeEntry) {
	t.Helper()
	for path, e := range tree {
		switch {
		case path == "/":
		case path == "/"+diffDirName:
			if !e.Dir {
				t.Errorf("crash at %v: %s recovered as a file", at, path)
			}
		case strings.HasPrefix(path, "/"+diffDirName+"/"):
			var i int
			if _, err := fmt.Sscanf(path, "/"+diffDirName+"/f%03d", &i); err != nil || i < 0 || i >= diffFiles {
				t.Errorf("crash at %v: recovered path %s was never created", at, path)
				continue
			}
			if e.Dir {
				t.Errorf("crash at %v: %s recovered as a directory", at, path)
			}
			if e.Size > uint64(diffFileSize(i)) {
				t.Errorf("crash at %v: %s has size %d, never grew past %d",
					at, path, e.Size, diffFileSize(i))
			}
		default:
			t.Errorf("crash at %v: recovered path %s was never created", at, path)
		}
	}
}

// checkPrefixOfRun asserts the synchronous-metadata property: the visible
// files must be reachable by running some prefix of the operation sequence.
// During the create phase that means a contiguous run f000..fk; once every
// file exists, the missing even files must be a prefix of the removal
// order.
func checkPrefixOfRun(t *testing.T, at fsim.Duration, tree map[string]fsck.TreeEntry) {
	t.Helper()
	present := make([]bool, diffFiles)
	count := 0
	for i := range present {
		if _, ok := tree["/"+diffDirName+"/"+diffFileName(i)]; ok {
			present[i] = true
			count++
		}
	}
	maxSeen := -1
	for i := diffFiles - 1; i >= 0; i-- {
		if present[i] {
			maxSeen = i
			break
		}
	}
	if maxSeen == -1 {
		return // crashed before any create was durable: the empty prefix
	}
	if maxSeen < diffFiles-1 {
		// Create phase: everything up to the newest visible file must be
		// visible too (each create returned before the next started).
		for i := 0; i < maxSeen; i++ {
			if !present[i] {
				t.Errorf("crash at %v: %s visible but earlier %s missing — not a prefix of the run",
					at, diffFileName(maxSeen), diffFileName(i))
				return
			}
		}
		return
	}
	// Remove phase: odd files never removed, so all must be visible; the
	// missing evens must be exactly the first k removals.
	firstPresent := diffFiles
	for i := 0; i < diffFiles; i += 2 {
		if present[i] {
			firstPresent = i
			break
		}
	}
	for i := 0; i < diffFiles; i++ {
		if i%2 == 1 && !present[i] {
			t.Errorf("crash at %v: %s missing but it was never removed", at, diffFileName(i))
		}
		if i%2 == 0 && i > firstPresent && !present[i] {
			t.Errorf("crash at %v: removals not a prefix — %s missing while %s is visible",
				at, diffFileName(i), diffFileName(firstPresent))
		}
	}
}

var diffCrashPoints = []fsim.Duration{
	500 * fsim.Millisecond,
	5 * fsim.Second,
	35 * fsim.Second,
	55 * fsim.Second,
	95 * fsim.Second,
}

func TestDifferentialRecovery(t *testing.T) {
	for _, scheme := range []fsim.Scheme{
		fsim.Conventional, fsim.SchedulerFlag, fsim.SchedulerChains,
		fsim.SoftUpdates, fsim.NVRAM, fsim.Journaling, fsim.AsyncDurability,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			for _, at := range diffCrashPoints {
				tree, _ := recoveredTree(t, conformanceOpts(scheme), at)
				checkSubsetOfRun(t, at, tree)
				if scheme == fsim.Conventional {
					checkPrefixOfRun(t, at, tree)
				}
			}
		})
	}
}

// TestJournalReplayIdempotent pins the recovery algorithm's re-entrancy: the
// replay scan is read-only over the journal region and applies committed
// images by sequence, so running it a second time on the recovered image must
// be a byte-for-byte no-op (crash-during-recovery is safe), and both passes
// must report the same transaction count.
func TestJournalReplayIdempotent(t *testing.T) {
	for _, at := range diffCrashPoints {
		sys, err := fsim.New(conformanceOpts(fsim.Journaling))
		if err != nil {
			t.Fatal(err)
		}
		diffWorkload(sys)
		img := sys.Crash(fsim.Time(at))
		n1 := fsck.ReplayJournal(img)
		once := append([]byte(nil), img...)
		n2 := fsck.ReplayJournal(img)
		if n1 != n2 {
			t.Errorf("crash at %v: replay counts differ: %d then %d", at, n1, n2)
		}
		if !bytes.Equal(once, img) {
			t.Errorf("crash at %v: second replay changed the image (%d txns)", at, n1)
		}
	}
}

// TestDifferentialRecoveryUnderFaults reruns the sweep with the fault plan
// active: retried and remapped writes must not let recovery resurrect state
// the run never produced. Assertions are gated on the driver reporting no
// exhausted-retry errors (a reported write error voids the durability
// premise the differential model relies on).
func TestDifferentialRecoveryUnderFaults(t *testing.T) {
	for _, scheme := range []fsim.Scheme{
		fsim.Conventional, fsim.SoftUpdates, fsim.NVRAM,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			for _, at := range diffCrashPoints {
				opt := conformanceOpts(scheme)
				opt.Faults = fsim.FaultSpec{
					Seed:            7,
					TransientPer10k: 150,
					TornPer10k:      150,
					LatencyPer10k:   50,
					BadSectors:      2,
				}
				opt.MaxRetries = 8
				tree, st := recoveredTree(t, opt, at)
				if st.Faults.Errors > 0 {
					t.Logf("crash at %v: %d write errors, differential not asserted", at, st.Faults.Errors)
					continue
				}
				checkSubsetOfRun(t, at, tree)
				if scheme == fsim.Conventional {
					checkPrefixOfRun(t, at, tree)
				}
			}
		})
	}
}
