package fsim_test

import (
	"fmt"
	"log"

	"metaupdate/fsim"
)

// Build a soft-updates system, create a small project tree, make it
// durable, and look at the disk traffic. Everything runs in deterministic
// virtual time, so this example's output is stable.
func Example() {
	sys, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates})
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(func(p *fsim.Proc) {
		fs := sys.FS
		dir, _ := fs.Mkdir(p, fsim.RootIno, "project")
		ino, _ := fs.Create(p, dir, "README")
		fs.WriteAt(p, ino, 0, []byte("ordered by soft updates"))
		fs.Sync(p)

		buf := make([]byte, 64)
		n, _ := fs.ReadAt(p, ino, 0, buf)
		fmt.Printf("read back: %s\n", buf[:n])
	})
	fmt.Printf("durable after %d disk writes\n", sys.Cache.WritesIssued)
	// Output:
	// read back: ordered by soft updates
	// durable after 9 disk writes
}
