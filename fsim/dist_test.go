package fsim

import (
	"testing"

	"metaupdate/internal/dmeta"
	"metaupdate/internal/fsck"
)

// TestDistSurface exercises the public distributed-cluster surface end to
// end on a 2-node SoftUpdates cluster: defaults, the Run driver, router
// ops, SyncAll, Crash images (post-sync, so fully durable), Shutdown.
func TestDistSurface(t *testing.T) {
	s, err := NewDist(DistOptions{Base: Options{Scheme: SoftUpdates}, Nodes: 2, Seed: 21})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	if got := s.Opt.MaxNodes; got != 2 {
		t.Errorf("MaxNodes default = %d, want Nodes", got)
	}
	if pp := s.Net.Params(); pp.Latency <= 0 || pp.BytesPerSec <= 0 || pp.String() == "" {
		t.Errorf("network params not defaulted: %+v", pp)
	}
	var ino uint64
	wall := s.Run(func(p *Proc) {
		var err error
		if ino, err = s.Cluster.Create(p, dmeta.RootIno, "a"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if got, err := s.Cluster.Lookup(p, dmeta.RootIno, "a"); err != nil || got != ino {
			t.Fatalf("lookup = %d, %v; want %d", got, err, ino)
		}
	})
	if wall <= 0 {
		t.Errorf("Run elapsed %v, want > 0", wall)
	}
	s.SyncAll()
	imgs := s.Crash(s.Eng.Now())
	if len(imgs) != 2 {
		t.Fatalf("Crash returned %d images, want 2", len(imgs))
	}
	tree, err := fsck.Tree(fsck.Bytes(imgs[0]))
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if _, ok := tree["/i/x1"]; !ok {
		t.Errorf("synced crash image missing the root inode file: %v", tree)
	}
	s.Shutdown()
}

// TestDistSplitDefaults pins the MaxNodes headroom granted when a split
// trigger is armed.
func TestDistSplitDefaults(t *testing.T) {
	opt := DistOptions{Base: Options{Scheme: NoOrder}, Nodes: 3, SplitEntries: 10}
	s, err := NewDist(opt)
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	defer s.Shutdown()
	if got := s.Opt.MaxNodes; got != 5 {
		t.Errorf("MaxNodes = %d, want Nodes+2 when splitting is armed", got)
	}
	if got := s.Opt.Base.DiskBytes; got != 32<<20 {
		t.Errorf("dist DiskBytes default = %d, want 32 MB", got)
	}
}

// TestDistCrashPastPanics pins the Crash precondition.
func TestDistCrashPastPanics(t *testing.T) {
	s, err := NewDist(DistOptions{Base: Options{Scheme: NoOrder}, Seed: 1})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	defer s.Shutdown()
	s.Run(func(p *Proc) {
		if _, err := s.Cluster.Create(p, dmeta.RootIno, "x"); err != nil {
			t.Fatalf("create: %v", err)
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("Crash in the past did not panic")
		}
	}()
	s.Crash(s.Eng.Now() - 1)
}
