package fsim

import (
	"bytes"
	"strings"
	"testing"

	"metaupdate/internal/dmeta"
	"metaupdate/internal/fsck"
	"metaupdate/internal/simnet"
)

// TestDistSurface exercises the public distributed-cluster surface end to
// end on a 2-node SoftUpdates cluster: defaults, the Run driver, router
// ops, SyncAll, Crash images (post-sync, so fully durable), Shutdown.
func TestDistSurface(t *testing.T) {
	s, err := NewDist(DistOptions{Base: Options{Scheme: SoftUpdates}, Nodes: 2, Seed: 21})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	if got := s.Opt.MaxNodes; got != 2 {
		t.Errorf("MaxNodes default = %d, want Nodes", got)
	}
	if pp := s.Net.Params(); pp.Latency <= 0 || pp.BytesPerSec <= 0 || pp.String() == "" {
		t.Errorf("network params not defaulted: %+v", pp)
	}
	var ino uint64
	wall := s.Run(func(p *Proc) {
		var err error
		if ino, err = s.Cluster.Create(p, dmeta.RootIno, "a"); err != nil {
			t.Fatalf("create: %v", err)
		}
		if got, err := s.Cluster.Lookup(p, dmeta.RootIno, "a"); err != nil || got != ino {
			t.Fatalf("lookup = %d, %v; want %d", got, err, ino)
		}
	})
	if wall <= 0 {
		t.Errorf("Run elapsed %v, want > 0", wall)
	}
	s.SyncAll()
	imgs := s.Crash(s.Eng.Now())
	if len(imgs) != 2 {
		t.Fatalf("Crash returned %d images, want 2", len(imgs))
	}
	tree, err := fsck.Tree(fsck.Bytes(imgs[0]))
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if _, ok := tree["/i/x1"]; !ok {
		t.Errorf("synced crash image missing the root inode file: %v", tree)
	}
	s.Shutdown()
}

// TestDistSplitDefaults pins the MaxNodes headroom granted when a split
// trigger is armed.
func TestDistSplitDefaults(t *testing.T) {
	opt := DistOptions{Base: Options{Scheme: NoOrder}, Nodes: 3, SplitEntries: 10}
	s, err := NewDist(opt)
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	defer s.Shutdown()
	if got := s.Opt.MaxNodes; got != 5 {
		t.Errorf("MaxNodes = %d, want Nodes+2 when splitting is armed", got)
	}
	if got := s.Opt.Base.DiskBytes; got != 32<<20 {
		t.Errorf("dist DiskBytes default = %d, want 32 MB", got)
	}
}

// TestDistCrashPastPanics pins the Crash precondition.
func TestDistCrashPastPanics(t *testing.T) {
	s, err := NewDist(DistOptions{Base: Options{Scheme: NoOrder}, Seed: 1})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	defer s.Shutdown()
	s.Run(func(p *Proc) {
		if _, err := s.Cluster.Create(p, dmeta.RootIno, "x"); err != nil {
			t.Fatalf("create: %v", err)
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("Crash in the past did not panic")
		}
	}()
	s.Crash(s.Eng.Now() - 1)
}

// TestDistZeroLatencyGate: a zero-latency network leaves the conservative
// scheduler no lookahead, so the parallel engine must refuse it up front
// with the deadlock explanation — while the serial engine, which needs no
// lookahead, still accepts the same topology.
func TestDistZeroLatencyGate(t *testing.T) {
	opt := DistOptions{
		Base:  Options{Scheme: NoOrder},
		Nodes: 2, Seed: 3,
		Net:           NetParams{Latency: simnet.ZeroLatency},
		EngineWorkers: 4,
	}
	if _, err := NewDist(opt); err == nil || !strings.Contains(err.Error(), "lookahead") {
		t.Fatalf("zero-latency parallel cluster error = %v, want the lookahead-deadlock explanation", err)
	}
	opt.EngineWorkers = 0
	s, err := NewDist(opt)
	if err != nil {
		t.Fatalf("zero-latency serial cluster: %v", err)
	}
	defer s.Shutdown()
	s.Run(func(p *Proc) {
		if _, err := s.Cluster.Create(p, dmeta.RootIno, "z"); err != nil {
			t.Fatalf("create: %v", err)
		}
	})
}

// TestDistObserveNeedsSerialEngine: the span recorder is single-engine
// state, so Observe and EngineWorkers are mutually exclusive.
func TestDistObserveNeedsSerialEngine(t *testing.T) {
	_, err := NewDist(DistOptions{
		Base:          Options{Scheme: SoftUpdates, Observe: true},
		Nodes:         2,
		EngineWorkers: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "Observe") {
		t.Fatalf("Observe + EngineWorkers error = %v, want a refusal naming Observe", err)
	}
}

// TestDistParallelMatchesSerial is the end-to-end identity check at the
// fsim surface: the same splitting cluster under the same load must
// produce identical operation counters, traffic totals, virtual clocks,
// and byte-identical crash images at every worker count.
func TestDistParallelMatchesSerial(t *testing.T) {
	type outcome struct {
		wall                       Duration
		ops, errs, cross           int64
		splits, migrated, forwards int64
		sent, bytes                int64
		active                     int
		now                        Time
	}
	run := func(workers int) (outcome, [][]byte) {
		s, err := NewDist(DistOptions{
			Base:  Options{Scheme: SoftUpdates},
			Nodes: 3, Seed: 7, SplitEntries: 12,
			EngineWorkers: workers,
		})
		if err != nil {
			t.Fatalf("NewDist(workers=%d): %v", workers, err)
		}
		res := s.Cluster.Load(dmeta.LoadSpec{Clients: 4, Ops: 40, Seed: 7})
		s.SyncAll()
		imgs := s.Crash(s.Eng.Now() + s.Net.MinDelay())
		tot := s.Net.Totals()
		c := s.Cluster
		return outcome{
			wall: res.Wall,
			ops:  c.Ops, errs: c.Errs, cross: c.CrossOps,
			splits: c.Splits, migrated: c.Migrated, forwards: c.Forwards(),
			sent: tot.Sent, bytes: tot.Bytes,
			active: c.ActiveNodes(), now: s.Eng.Now(),
		}, imgs
	}

	want, wantImgs := run(0)
	if want.splits == 0 || want.cross == 0 {
		t.Fatalf("baseline did not exercise splits/cross-ops: %+v", want)
	}
	for _, workers := range []int{2, 8} {
		got, imgs := run(workers)
		if got != want {
			t.Errorf("workers=%d outcome:\n got %+v\nwant %+v", workers, got, want)
		}
		if len(imgs) != len(wantImgs) {
			t.Fatalf("workers=%d: %d crash images, serial %d", workers, len(imgs), len(wantImgs))
		}
		for i := range imgs {
			if !bytes.Equal(imgs[i], wantImgs[i]) {
				t.Errorf("workers=%d: node %d crash image differs from serial", workers, i+1)
			}
		}
	}
}
