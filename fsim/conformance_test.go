package fsim_test

import (
	"fmt"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/fsck"
	"metaupdate/internal/ordering"
)

// Cross-scheme conformance suite for the paper's three metadata update
// ordering rules (section 2):
//
//  1. Never point to a structure before it has been initialized.
//  2. Never re-use a resource before nullifying all previous pointers to it.
//  3. Never reset the last pointer to a live resource before a new pointer
//     has been set.
//
// Each rule has a named witness predicate mapping fsck findings back to the
// rule whose violation produced them; a scheme conforms iff every crash
// image in a sweep yields zero witnesses for every rule. No Order is the
// control: the suite asserts it DOES violate, so a regression that silently
// weakens the fsck oracle (making everything "pass") is caught too.

// rule1NeverPointToUninitialized witnesses rule 1: a directory entry naming
// an unallocated inode, a pointer outside the data region, a type flag that
// disagrees with the inode, directory contents that were never formatted,
// or a file block still carrying another file's (deleted) contents — all
// are a persistent pointer that landed before its target was initialized.
func rule1NeverPointToUninitialized(f fsck.Finding) bool {
	switch f.Kind {
	case fsck.DanglingEntry, fsck.BadPointer, fsck.TypeMismatch,
		fsck.BadDirFormat, fsck.UninitializedData, fsck.BadSuperblock:
		return true
	}
	return false
}

// rule2NeverReuseBeforeNullify witnesses rule 2: a fragment owned by two
// inodes at once means the free+reallocate landed before the old owner's
// pointer was nullified on disk.
func rule2NeverReuseBeforeNullify(f fsck.Finding) bool {
	return f.Kind == fsck.CrossLink
}

// rule3NeverResetLastPointerEarly witnesses rule 3: an on-disk link count
// lower than the number of on-disk references risks premature free — the
// remove half of a rename (or the count decrement) landed before the new
// pointer was durable.
func rule3NeverResetLastPointerEarly(f fsck.Finding) bool {
	return f.Kind == fsck.LinkUndercount
}

var orderingRules = []struct {
	name    string
	witness func(fsck.Finding) bool
}{
	{"rule1: never point to an uninitialized structure", rule1NeverPointToUninitialized},
	{"rule2: never reuse a resource before nullifying pointers to it", rule2NeverReuseBeforeNullify},
	{"rule3: never reset the last pointer before the new one is set", rule3NeverResetLastPointerEarly},
}

// classifyByRule buckets violations under the ordering rule they witness.
// Every violation the fsck oracle can emit maps to exactly one rule, so the
// classification doubles as a completeness check on the suite itself.
func classifyByRule(t *testing.T, findings []fsck.Finding) map[string][]fsck.Finding {
	t.Helper()
	byRule := make(map[string][]fsck.Finding)
	for _, f := range findings {
		matched := false
		for _, r := range orderingRules {
			if r.witness(f) {
				byRule[r.name] = append(byRule[r.name], f)
				matched = true
			}
		}
		if !matched {
			t.Errorf("violation %v matches no ordering rule; extend the suite", f)
		}
	}
	return byRule
}

// conformanceOpts is the compact configuration every sweep in this file
// uses: small media so fsck per crash image stays cheap.
func conformanceOpts(scheme fsim.Scheme) fsim.Options {
	return fsim.Options{
		Scheme:     scheme,
		DiskBytes:  8 << 20,
		NInodes:    1024,
		CacheBytes: 2 << 20,
	}
}

// churnForever launches (without waiting for) a metadata-heavy loop that
// exercises all three rules: creates with stamped data (rule 1), removes
// that free resources for reuse (rule 2), and renames over live names
// (rule 3).
func churnForever(sys *fsim.System) {
	sys.Eng.Spawn("churn", func(p *fsim.Proc) {
		fs := sys.FS
		dir, err := fs.Mkdir(p, fsim.RootIno, "work")
		if err != nil {
			return
		}
		for i := 0; ; i++ {
			name := fmt.Sprintf("f%d", i%40)
			if ino, err := fs.Create(p, dir, name); err == nil {
				fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 4096))
			}
			if i%3 == 2 {
				fs.Unlink(p, dir, fmt.Sprintf("f%d", (i-2)%40))
			}
			if i%7 == 6 {
				fs.Rename(p, dir, name, dir, fmt.Sprintf("r%d", i%40))
			}
		}
	})
}

// crashImage runs the churn under opt, pulls the plug at the given virtual
// time, and returns the media image after the scheme's recovery assistance:
// NVRAM replays its surviving log records (the paper's premise is that NVRAM
// contents survive the crash); every other scheme recovers with fsck alone.
func crashImage(t *testing.T, opt fsim.Options, at fsim.Duration) ([]byte, *fsim.System) {
	t.Helper()
	sys, err := fsim.New(opt)
	if err != nil {
		t.Fatalf("fsim.New(%v): %v", opt.Scheme, err)
	}
	churnForever(sys)
	img := sys.Crash(fsim.Time(at))
	if len(img) == 0 {
		t.Fatal("crash produced no image")
	}
	if sys.NV != nil {
		sys.NV.Log().Replay(img)
	}
	if sys.Jnl != nil {
		fsck.ReplayJournal(img)
	}
	return img, sys
}

// The syncer daemon sweeps 1/30th of the cache per second, so the first
// delayed writes reach the disk after roughly half a minute; crash points
// before that see an empty (trivially consistent) media under the
// fully-delayed schemes. Crash after, while flushing and churn overlap.
var conformanceCrashPoints = []fsim.Duration{
	35 * fsim.Second,
	52 * fsim.Second,
	80 * fsim.Second,
}

// TestOrderingRuleConformance is the cross-scheme matrix: the five schemes
// the paper endorses must satisfy all three rules at every crash point;
// No Order must not.
func TestOrderingRuleConformance(t *testing.T) {
	cases := []struct {
		scheme    fsim.Scheme
		wantClean bool
	}{
		{fsim.Conventional, true},
		{fsim.SchedulerFlag, true},
		{fsim.SchedulerChains, true},
		{fsim.SoftUpdates, true},
		{fsim.NVRAM, true},
		{fsim.Journaling, true},
		{fsim.AsyncDurability, true},
		{fsim.NoOrder, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme.String(), func(t *testing.T) {
			t.Parallel()
			violated := make(map[string]int)
			for _, at := range conformanceCrashPoints {
				img, _ := crashImage(t, conformanceOpts(tc.scheme), at)
				byRule := classifyByRule(t, fsck.Check(img).Violations())
				for rule, fs := range byRule {
					violated[rule] += len(fs)
					if tc.wantClean {
						t.Errorf("crash at %v: %s violated %d times, e.g. %v",
							at, rule, len(fs), fs[0])
					}
				}
			}
			if !tc.wantClean && len(violated) == 0 {
				t.Errorf("%v produced no ordering-rule violations across %d crash points; "+
					"the control scheme should violate (is the oracle still working?)",
					tc.scheme, len(conformanceCrashPoints))
			}
		})
	}
}

// rule4DurabilityFollowsNotification is the fourth named predicate, specific
// to AsyncDurability's visibility/durability contract: an operation whose
// durability notification was delivered before the crash MUST be present in
// the recovered image, while an operation that was visible (its Create
// returned) but not yet notified MAY be lost. The predicate takes the
// recovered tree and the notification log and returns the contract
// violations — notified operations that did not survive.
func rule4DurabilityFollowsNotification(tree map[string]fsck.TreeEntry, notified map[fsim.Ino]string) []string {
	var violations []string
	for ino, name := range notified {
		e, ok := tree["/"+name]
		if !ok {
			violations = append(violations, fmt.Sprintf("notified create of %q (ino %d) missing after crash", name, ino))
			continue
		}
		if e.Ino != ino {
			violations = append(violations, fmt.Sprintf("notified create of %q resolves to ino %d, want %d", name, e.Ino, ino))
		}
	}
	return violations
}

// TestAsyncVisibilityVsDurabilitySplit pins AsyncDurability's contract with
// rule4: creates become visible immediately, notifications arrive on group
// commit, and a crash between the two loses only unnotified operations. The
// workload paces creates against a stretched 2 s group-commit interval so
// the crash instant provably lands inside the window: some operations are
// notified (and must survive), others are visible-but-unnotified (and the
// test asserts the loss window is real, not vacuous).
func TestAsyncVisibilityVsDurabilitySplit(t *testing.T) {
	opt := conformanceOpts(fsim.AsyncDurability)
	opt.AsyncInterval = 2 * fsim.Second
	opt.AsyncWindow = 512
	sys, err := fsim.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	type op struct {
		name string
		ino  fsim.Ino
	}
	var visible []op
	sys.Eng.Spawn("creator", func(p *fsim.Proc) {
		// Short names keep every entry inside the root's formatted fragment,
		// so a notified entry's reachability never hinges on a separate
		// (unregistered) pointer write.
		for i := 0; i < 40; i++ {
			ino, err := sys.FS.Create(p, fsim.RootIno, fmt.Sprintf("a%02d", i))
			if err != nil {
				return
			}
			visible = append(visible, op{fmt.Sprintf("a%02d", i), ino})
			p.Sleep(100 * fsim.Millisecond)
		}
	})
	// Crash mid-window: after the ~2 s group commit notified the early ops,
	// before the ~4 s one covers the rest.
	img := sys.Crash(fsim.Time(3050 * fsim.Millisecond))

	notified := make(map[fsim.Ino]string)
	for _, n := range sys.Async.Notices() {
		if n.Kind == ordering.NoticeAdd {
			for _, o := range visible {
				if o.ino == n.Ino {
					notified[n.Ino] = o.name
				}
			}
		}
	}
	if len(notified) == 0 {
		t.Fatal("no operation was notified before the crash; crash point misses the group commit")
	}
	if len(notified) >= len(visible) {
		t.Fatalf("all %d visible ops were notified; crash point does not exercise the in-flight window", len(visible))
	}

	// The raw crash image still satisfies rules 1-3 (the scheme's write
	// pattern is scheduler chains).
	for rule, fs := range classifyByRule(t, fsck.Check(img).Violations()) {
		t.Errorf("async crash image: %s violated, e.g. %v", rule, fs[0])
	}

	tree, err := fsck.Tree(fsck.Bytes(img))
	if err != nil {
		t.Fatalf("tree walk: %v", err)
	}
	for _, v := range rule4DurabilityFollowsNotification(tree, notified) {
		t.Errorf("rule4: %s", v)
	}
	lost := 0
	for _, o := range visible {
		if _, ok := notified[o.ino]; ok {
			continue
		}
		if _, ok := tree["/"+o.name]; !ok {
			lost++
		}
	}
	t.Logf("visible=%d notified=%d lost-unnotified=%d", len(visible), len(notified), lost)
	if lost == 0 {
		t.Error("every visible-but-unnotified op survived the crash; the visibility/durability split is vacuous at this crash point")
	}
}

// TestOrderingRulesHoldUnderFaults is the tentpole integration: with the
// fault plan injecting transient aborts, torn writes, and latency spikes,
// the safe schemes must STILL satisfy every rule at every crash point — the
// driver never signals a faulted write complete before its sectors are on
// the media, so retries cannot reorder metadata. The assertion is gated on
// the run having no exhausted-retry errors: once the driver gives up on a
// write, durability is out of its hands and the paper's premise is void.
func TestOrderingRulesHoldUnderFaults(t *testing.T) {
	for _, scheme := range []fsim.Scheme{
		fsim.Conventional, fsim.SchedulerFlag, fsim.SchedulerChains,
		fsim.SoftUpdates, fsim.NVRAM, fsim.Journaling, fsim.AsyncDurability,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			t.Parallel()
			for _, at := range conformanceCrashPoints {
				opt := conformanceOpts(scheme)
				opt.Faults = fsim.FaultSpec{
					Seed:            41,
					TransientPer10k: 120,
					TornPer10k:      120,
					LatencyPer10k:   60,
					BadSectors:      3,
				}
				opt.MaxRetries = 8
				img, sys := crashImage(t, opt, at)
				st := sys.CollectStats()
				if st.Faults.Errors > 0 {
					// The driver exhausted retries; conformance is not
					// promised past a reported write error.
					t.Logf("crash at %v: %d write errors, conformance not asserted", at, st.Faults.Errors)
					continue
				}
				for rule, fs := range classifyByRule(t, fsck.Check(img).Violations()) {
					t.Errorf("crash at %v under faults (%d transient, %d torn, %d retries): %s violated, e.g. %v",
						at, st.Faults.Transient, st.Faults.Torn, st.Faults.Retries, rule, fs[0])
				}
			}
		})
	}
}
