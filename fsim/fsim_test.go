package fsim_test

import (
	"fmt"
	"runtime"
	"testing"

	"metaupdate/fsim"
)

func TestNewAllSchemes(t *testing.T) {
	for _, s := range fsim.Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			sys, err := fsim.New(fsim.Options{Scheme: s, DiskBytes: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if sys.FS == nil || sys.Driver == nil || sys.Cache == nil {
				t.Fatal("incomplete system")
			}
			if s == fsim.SoftUpdates && sys.Soft == nil {
				t.Fatal("Soft handle missing")
			}
			elapsed := sys.Run(func(p *fsim.Proc) {
				ino, err := sys.FS.Create(p, fsim.RootIno, "x")
				if err != nil {
					t.Error(err)
					return
				}
				if err := sys.FS.WriteAt(p, ino, 0, []byte("hello")); err != nil {
					t.Error(err)
				}
				sys.FS.Sync(p)
			})
			if elapsed <= 0 {
				t.Fatal("no virtual time elapsed")
			}
		})
	}
}

func TestDefaultsFollowPaperConfiguration(t *testing.T) {
	sys, err := fsim.New(fsim.Options{Scheme: fsim.SchedulerFlag, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Opt.NR || !sys.Opt.CB || sys.Opt.Sem != fsim.SemPart {
		t.Errorf("flag defaults = %+v, want Part-NR/CB", sys.Opt)
	}
	if sys.Opt.AllocInit {
		t.Error("flag scheme should not default to allocation initialization")
	}
	su, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !su.Opt.AllocInit {
		t.Error("soft updates should default to allocation initialization")
	}
}

func TestRunUsersElapsed(t *testing.T) {
	sys, err := fsim.New(fsim.Options{Scheme: fsim.NoOrder, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	each, wall := sys.RunUsers(3, func(p *fsim.Proc, u int) {
		dir, err := sys.FS.Mkdir(p, fsim.RootIno, fmt.Sprintf("u%d", u))
		if err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			if _, err := sys.FS.Create(p, dir, fmt.Sprintf("f%d", i)); err != nil {
				t.Error(err)
			}
		}
	})
	if len(each) != 3 {
		t.Fatalf("%d user times", len(each))
	}
	for u, d := range each {
		if d <= 0 || d > wall {
			t.Errorf("user %d elapsed %v (wall %v)", u, d, wall)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() fsim.Duration {
		sys, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates, DiskBytes: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(func(p *fsim.Proc) {
			dir, _ := sys.FS.Mkdir(p, fsim.RootIno, "d")
			for i := 0; i < 40; i++ {
				ino, _ := sys.FS.Create(p, dir, fmt.Sprintf("f%d", i))
				sys.FS.WriteAt(p, ino, 0, make([]byte, 3000))
			}
			for i := 0; i < 40; i += 2 {
				sys.FS.Unlink(p, dir, fmt.Sprintf("f%d", i))
			}
			sys.FS.Sync(p)
		})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestResetAndCollectStats(t *testing.T) {
	sys, err := fsim.New(fsim.Options{Scheme: fsim.Conventional, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *fsim.Proc) {
		sys.FS.Create(p, fsim.RootIno, "warmup")
		sys.FS.Sync(p)
	})
	sys.ResetStats()
	st := sys.CollectStats()
	if st.DiskRequests != 0 || st.CPUTime != 0 {
		t.Fatalf("stats not reset: %+v", st)
	}
	sys.Run(func(p *fsim.Proc) {
		ino, _ := sys.FS.Create(p, fsim.RootIno, "x")
		sys.FS.WriteAt(p, ino, 0, make([]byte, 2048))
		sys.FS.Sync(p)
	})
	st = sys.CollectStats()
	if st.DiskRequests == 0 || st.CPUTime == 0 || st.Elapsed == 0 {
		t.Fatalf("stats empty after work: %+v", st)
	}
	if st.AvgServiceMS <= 0 || st.AvgResponseMS < st.AvgServiceMS {
		t.Errorf("timing stats inconsistent: %+v", st)
	}
}

func TestCrashReturnsImage(t *testing.T) {
	sys, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Eng.Spawn("w", func(p *fsim.Proc) {
		for i := 0; ; i++ {
			if _, err := sys.FS.Create(p, fsim.RootIno, fmt.Sprintf("f%d", i)); err != nil {
				return
			}
		}
	})
	img := sys.Crash(3 * fsim.Second)
	if len(img) == 0 {
		t.Fatal("no image")
	}
}

func TestSchemeStrings(t *testing.T) {
	want := map[fsim.Scheme]string{
		fsim.NoOrder:         "No Order",
		fsim.Conventional:    "Conventional",
		fsim.SchedulerFlag:   "Scheduler Flag",
		fsim.SchedulerChains: "Scheduler Chains",
		fsim.SoftUpdates:     "Soft Updates",
		fsim.NVRAM:           "NVRAM",
		fsim.Journaling:      "Journaling",
		fsim.AsyncDurability: "Async Durability",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if len(fsim.Schemes) != 7 {
		t.Errorf("Schemes has %d entries", len(fsim.Schemes))
	}
}

func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		sys, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates, DiskBytes: 32 << 20})
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(func(p *fsim.Proc) {
			ino, _ := sys.FS.Create(p, fsim.RootIno, "f")
			sys.FS.WriteAt(p, ino, 0, make([]byte, 4096))
			sys.FS.Sync(p)
		})
		sys.Shutdown()
		if sys.Eng.Live() != 0 {
			t.Fatalf("%d live processes after Shutdown", sys.Eng.Live())
		}
	}
	runtime.GC()
	after := runtime.NumGoroutine()
	if after > before+2 {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}
