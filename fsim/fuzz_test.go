package fsim_test

import (
	"fmt"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/crashmc"
	"metaupdate/internal/fsck"
)

// FuzzCrashConsistency drives a byte-coded operation sequence against a
// randomly chosen safe scheme with fault injection active, crashes the run
// at a fuzzer-chosen instant, and bounded-exhaustively enumerates the crash
// images of the recorded timeline: every one of them must satisfy fsck's
// ordering rules. The property is gated on the driver reporting no
// exhausted-retry write errors — after a reported error the scheme's
// durability premise is void (the conformance suite pins that boundary).
//
// Run the smoke locally with:
//
//	go test ./fsim -run FuzzCrashConsistency -fuzz FuzzCrashConsistency -fuzztime 60s
//
// The fuzzSafeSchemes list excludes NVRAM: its recovery needs a log replay
// the image enumerator deliberately does not model. Journaling's recovery
// (journal replay over the image) IS modeled, via crashmc's Recover hook;
// the fuzz options shrink its log region so op sequences of a few dozen
// wrap it several times. AsyncDurability runs with a tiny in-flight window
// so the admission throttle is constantly exercised.
var fuzzSafeSchemes = []fsim.Scheme{
	fsim.Conventional, fsim.SchedulerFlag, fsim.SchedulerChains, fsim.SoftUpdates,
	fsim.Journaling, fsim.AsyncDurability,
}

// fuzzOps interprets the coded op sequence on a 16-name namespace. Every
// byte is one operation; unrepresentable ops (removing a missing file)
// fail at the FS layer and are simply ignored, so all byte strings are
// valid programs.
func fuzzOps(sys *fsim.System, ops []byte) {
	sys.Eng.Spawn("fuzz", func(p *fsim.Proc) {
		fs := sys.FS
		dir, err := fs.Mkdir(p, fsim.RootIno, "z")
		if err != nil {
			return
		}
		name := func(b byte) string { return fmt.Sprintf("n%d", b%16) }
		for _, b := range ops {
			switch b % 6 {
			case 0:
				fs.Create(p, dir, name(b>>3))
			case 1:
				if ino, err := fs.Lookup(p, dir, name(b>>3)); err == nil {
					size := (int(b>>3)%4 + 1) * 1024
					fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, size))
				}
			case 2:
				fs.Unlink(p, dir, name(b>>3))
			case 3:
				fs.Rename(p, dir, name(b>>3), dir, name(b>>4+1))
			case 4:
				fs.Mkdir(p, dir, name(b>>3))
			case 5:
				fs.Sync(p)
			}
		}
	})
}

func FuzzCrashConsistency(f *testing.F) {
	// Seeds cover each scheme, a create/write/remove mix, a rename burst,
	// and a fault-heavy timeline; the on-disk corpus under
	// testdata/fuzz/FuzzCrashConsistency adds crash points near the syncer
	// horizon.
	f.Add([]byte{0, 1, 0, 9, 1, 2, 5}, uint8(0), uint32(800), int64(1))
	f.Add([]byte{0, 8, 16, 1, 9, 3, 11, 3, 5, 2}, uint8(1), uint32(2500), int64(2))
	f.Add([]byte{0, 0, 4, 12, 1, 17, 2, 10, 5, 0, 1, 2}, uint8(2), uint32(35000), int64(3))
	f.Add([]byte{0, 1, 5, 0, 1, 5, 2, 2, 3}, uint8(3), uint32(52000), int64(4))
	// Journaling with a churn long enough to lap the shrunken 24-frag log
	// region several times (wrap-around replay), crashing mid-flush.
	f.Add([]byte{0, 8, 16, 24, 1, 9, 17, 25, 2, 10, 0, 8, 16, 24, 1, 9, 3, 11, 2, 10, 18, 0, 8, 5, 0, 1, 2, 3, 4, 0}, uint8(4), uint32(35000), int64(5))
	// AsyncDurability with more naming ops than its 4-op fuzz window, so the
	// admission throttle and group commit both fire before the crash.
	f.Add([]byte{0, 8, 16, 24, 32, 40, 48, 56, 2, 10, 18, 26, 0, 8, 16, 3, 11, 5, 0, 2}, uint8(5), uint32(2500), int64(6))

	f.Fuzz(func(t *testing.T, ops []byte, schemeSel uint8, crashMS uint32, faultSeed int64) {
		if len(ops) > 48 {
			ops = ops[:48] // keep one execution cheap; long tails add nothing
		}
		scheme := fuzzSafeSchemes[int(schemeSel)%len(fuzzSafeSchemes)]
		opt := fsim.Options{
			Scheme:     scheme,
			DiskBytes:  4 << 20,
			NInodes:    512,
			CacheBytes: 1 << 20,
			Faults: fsim.FaultSpec{
				Seed:            faultSeed,
				TransientPer10k: 100,
				TornPer10k:      100,
				LatencyPer10k:   50,
				BadSectors:      2,
			},
			MaxRetries: 8,
		}
		switch scheme {
		case fsim.Journaling:
			opt.JournalFrags = 24 // a handful of txns per lap: wrap constantly
		case fsim.AsyncDurability:
			opt.AsyncWindow = 4 // tiny window: the admission throttle fires
		}
		sys, err := fsim.New(opt)
		if err != nil {
			t.Fatalf("fsim.New(%v): %v", scheme, err)
		}
		rec := crashmc.Attach(sys.Driver, sys.Disk)
		fuzzOps(sys, ops)
		at := fsim.Time(200*fsim.Millisecond) + fsim.Time(crashMS%60000)*fsim.Millisecond
		sys.Crash(at)
		if sys.CollectStats().Faults.Errors > 0 {
			return // durability premise void; nothing to assert
		}
		cfg := crashmc.Config{Workers: 2, Budget: 400, PerInstant: 64}
		if scheme == fsim.Journaling {
			cfg.Recover = func(img []byte) { fsck.ReplayJournal(img) }
		}
		res := rec.Explore(cfg)
		if !res.Clean() {
			v := res.Violations[0]
			t.Fatalf("%v: %d violating crash images (ops=%v crash=%v seed=%d); first at instant %d: %v",
				scheme, res.Stats.Violating, ops, at, faultSeed, v.Instant, v.Findings)
		}
	})
}
