package fsim_test

import (
	"fmt"
	"math/rand"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/ffs"
	"metaupdate/internal/fsck"
)

// Concurrent users hammering a SHARED directory with mixed operations:
// exercises the inode locks, the allocator mutex, write locks, and every
// ordering scheme's bookkeeping under contention. The end state must be
// identical across runs (determinism) and fsck-clean after sync.
func TestSharedDirectoryStress(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			finalState := func() (string, *fsim.System) {
				sys, err := fsim.New(fsim.Options{Scheme: scheme, DiskBytes: 96 << 20})
				if err != nil {
					t.Fatal(err)
				}
				var shared fsim.Ino
				sys.Run(func(p *fsim.Proc) {
					shared, err = sys.FS.Mkdir(p, fsim.RootIno, "shared")
					if err != nil {
						t.Fatal(err)
					}
				})
				sys.RunUsers(4, func(p *fsim.Proc, u int) {
					rng := rand.New(rand.NewSource(int64(u) + 42))
					for step := 0; step < 120; step++ {
						name := fmt.Sprintf("u%d-f%d", u, rng.Intn(10))
						other := fmt.Sprintf("u%d-f%d", u, rng.Intn(10))
						switch rng.Intn(5) {
						case 0, 1:
							if ino, err := sys.FS.Create(p, shared, name); err == nil {
								sys.FS.WriteAt(p, ino, 0, make([]byte, 500+rng.Intn(12000)))
							}
						case 2:
							sys.FS.Unlink(p, shared, name)
						case 3:
							sys.FS.Rename(p, shared, name, shared, other)
						case 4:
							if ino, err := sys.FS.Lookup(p, shared, name); err == nil {
								buf := make([]byte, 4096)
								sys.FS.ReadAt(p, ino, 0, buf)
								sys.FS.WriteAt(p, ino, 0, make([]byte, 100+rng.Intn(2000)))
							}
						}
					}
				})
				sys.Run(func(p *fsim.Proc) { sys.FS.Sync(p) })
				// Canonical state: sorted listing with sizes.
				var state string
				sys.Run(func(p *fsim.Proc) {
					ents, err := sys.FS.ReadDir(p, shared)
					if err != nil {
						t.Fatal(err)
					}
					for _, e := range ents {
						ip, err := sys.FS.Stat(p, e.Ino)
						if err != nil {
							t.Fatalf("stat %q: %v", e.Name, err)
						}
						state += fmt.Sprintf("%s:%d;", e.Name, ip.Size)
					}
				})
				return state, sys
			}

			s1, sys := finalState()
			if s1 == "" {
				t.Fatal("stress produced an empty directory (suspicious)")
			}
			// fsck-clean after full sync.
			rep := fsck.Check(sys.Disk.Image())
			if len(rep.Findings) != 0 {
				t.Fatalf("fsck after stress: %v", rep.Findings[0])
			}
			if sys.Cache.HeldCount() != 0 {
				t.Fatalf("%d buffers left held", sys.Cache.HeldCount())
			}
			if sys.Soft != nil && sys.Soft.DepCount() != 0 {
				t.Fatalf("%d soft-updates deps left", sys.Soft.DepCount())
			}
			// Deterministic replay.
			s2, _ := finalState()
			if s1 != s2 {
				t.Fatal("stress end state differs between identical runs")
			}
		})
	}
}

// Separate-directory variant at higher intensity, ending with full removal:
// nothing may leak.
func TestSeparateDirsChurnAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, scheme := range []fsim.Scheme{fsim.SoftUpdates, fsim.SchedulerChains} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			sys, err := fsim.New(fsim.Options{Scheme: scheme, DiskBytes: 96 << 20})
			if err != nil {
				t.Fatal(err)
			}
			sys.RunUsers(4, func(p *fsim.Proc, u int) {
				dir, err := sys.FS.Mkdir(p, fsim.RootIno, fmt.Sprintf("u%d", u))
				if err != nil {
					t.Error(err)
					return
				}
				for round := 0; round < 4; round++ {
					for i := 0; i < 20; i++ {
						ino, err := sys.FS.Create(p, dir, fmt.Sprintf("f%d", i))
						if err != nil {
							t.Error(err)
							return
						}
						sys.FS.WriteAt(p, ino, 0, make([]byte, 3000+i*311))
					}
					for i := 0; i < 20; i++ {
						sys.FS.Unlink(p, dir, fmt.Sprintf("f%d", i))
					}
				}
			})
			sys.Run(func(p *fsim.Proc) {
				for u := 0; u < 4; u++ {
					if err := sys.FS.Rmdir(p, fsim.RootIno, fmt.Sprintf("u%d", u)); err != nil {
						t.Fatalf("rmdir u%d: %v", u, err)
					}
				}
				sys.FS.Sync(p)
			})
			rep := fsck.Check(sys.Disk.Image())
			if len(rep.Findings) != 0 {
				t.Fatalf("fsck: %v", rep.Findings[0])
			}
			if rep.AllocatedInodes != 1 {
				t.Fatalf("%d inodes allocated on disk, want only the root", rep.AllocatedInodes)
			}
			_ = ffs.RootIno
		})
	}
}
