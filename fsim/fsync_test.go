package fsim_test

import (
	"bytes"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/ffs"
)

// allSchemes includes the five paper schemes plus the NVRAM extension.
var allSchemes = []fsim.Scheme{
	fsim.Conventional, fsim.SchedulerFlag, fsim.SchedulerChains,
	fsim.SoftUpdates, fsim.NoOrder, fsim.NVRAM,
}

// onDiskInode decodes ino directly from the media image.
func onDiskInode(sys *fsim.System, ino fsim.Ino) ffs.Inode {
	sb := sys.FS.Superblock()
	frag, off := sb.InodeFrag(ino)
	return ffs.DecodeInode(sys.Disk.Image()[int64(frag)*ffs.FragSize+int64(off):])
}

// Fsync must make the file durable under every scheme: after Fsync returns,
// the on-disk inode carries the final size and the on-disk blocks carry the
// data, with no further flushing.
func TestFsyncDurableUnderEveryScheme(t *testing.T) {
	for _, scheme := range allSchemes {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			sys, err := fsim.New(fsim.Options{Scheme: scheme, DiskBytes: 64 << 20})
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("fsync!"), 3000) // ~18 KB, 3 blocks
			var ino fsim.Ino
			sys.Run(func(p *fsim.Proc) {
				ino, err = sys.FS.Create(p, fsim.RootIno, "f")
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.FS.WriteAt(p, ino, 0, payload); err != nil {
					t.Fatal(err)
				}
				if err := sys.FS.Fsync(p, ino); err != nil {
					t.Fatal(err)
				}
			})
			// Inspect the raw media: the inode and its data must be there.
			od := onDiskInode(sys, ino)
			if !od.Allocated() || od.Size != uint64(len(payload)) {
				t.Fatalf("on-disk inode after Fsync: mode=%#x size=%d want size %d",
					od.Mode, od.Size, len(payload))
			}
			img := sys.Disk.Image()
			got := make([]byte, 0, len(payload))
			for bi := 0; uint64(bi*ffs.BlockSize) < od.Size; bi++ {
				frag := od.Direct[bi]
				if frag == 0 {
					t.Fatalf("on-disk hole at block %d after Fsync", bi)
				}
				n := ffs.BlockSize
				if rem := int(od.Size) - bi*ffs.BlockSize; rem < n {
					n = rem
				}
				got = append(got, img[int64(frag)*ffs.FragSize:int64(frag)*ffs.FragSize+int64(n)]...)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("on-disk data does not match after Fsync")
			}
		})
	}
}

func TestFsyncMissingFile(t *testing.T) {
	sys, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(func(p *fsim.Proc) {
		if err := sys.FS.Fsync(p, fsim.Ino(999)); err != ffs.ErrNotExist {
			t.Fatalf("Fsync of unallocated inode: %v", err)
		}
	})
}

// Section 6.1 semantics: when create() returns, whether anything is durable
// differs by scheme — Conventional has synchronously written the inode;
// soft updates has written nothing at all.
func TestCreateDurabilitySemantics(t *testing.T) {
	durableInode := func(scheme fsim.Scheme) bool {
		sys, err := fsim.New(fsim.Options{Scheme: scheme, DiskBytes: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		var ino fsim.Ino
		sys.Run(func(p *fsim.Proc) {
			ino, err = sys.FS.Create(p, fsim.RootIno, "f")
			if err != nil {
				t.Fatal(err)
			}
		})
		od := onDiskInode(sys, ino)
		return od.Allocated()
	}
	if !durableInode(fsim.Conventional) {
		t.Error("Conventional create returned before the inode reached the disk")
	}
	if durableInode(fsim.SoftUpdates) {
		t.Error("soft updates create wrote the inode synchronously")
	}
	if durableInode(fsim.NoOrder) {
		t.Error("No Order create wrote the inode synchronously")
	}
}
