package fsim

import (
	"fmt"

	"metaupdate/internal/cache"
	"metaupdate/internal/dev"
	"metaupdate/internal/disk"
	"metaupdate/internal/dmeta"
	"metaupdate/internal/fault"
	"metaupdate/internal/ffs"
	"metaupdate/internal/obs"
	"metaupdate/internal/sim"
	"metaupdate/internal/simnet"
)

// NetParams re-exports the simulated-network cost model (internal/simnet).
type NetParams = simnet.Params

// Namespace errors the distributed router returns — the same values the
// single-machine file system uses.
var (
	ErrExist    = ffs.ErrExist
	ErrNotExist = ffs.ErrNotExist
	ErrIsDir    = ffs.ErrIsDir
)

// DistOptions configures a sharded metadata cluster: N node machines,
// each a full single-machine stack built from Base (one per node, so the
// ordering scheme under comparison runs independently on every shard),
// connected by a simulated network and partitioned by inode-id range.
type DistOptions struct {
	// Base is the per-node machine configuration. Sizes left zero get
	// dist-scale defaults (32 MB disk, 2 MB cache, 4096 inodes) — a
	// metadata node holds many small files, not user data.
	Base Options

	// Nodes is the initial shard count (default 1). MaxNodes caps growth
	// by dynamic splitting; it defaults to Nodes when no split trigger is
	// configured and Nodes+2 otherwise.
	Nodes, MaxNodes int

	// Seed keys every dmeta decision stream (router allocation, split
	// points, migration batching, the workload).
	Seed int64

	// SplitEntries / SplitQueue are the dynamic-split triggers (tree
	// size / inbox depth); 0 disables each.
	SplitEntries, SplitQueue int

	// Net is the link cost model; zero fields take simnet defaults.
	Net NetParams

	// EngineWorkers > 1 runs the cluster on a parallel group of
	// per-node event engines (one LP per node plus one for the
	// client/router) synchronized conservatively with the network
	// latency as lookahead, on that many worker goroutines. 0 or 1
	// selects the serial engine. Observable output is byte-identical
	// at every worker count.
	EngineWorkers int
}

func (o *DistOptions) setDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 1
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = o.Nodes
		if o.SplitEntries > 0 || o.SplitQueue > 0 {
			o.MaxNodes = o.Nodes + 2
		}
	}
	if o.Base.DiskBytes == 0 {
		o.Base.DiskBytes = 32 << 20
	}
	if o.Base.CacheBytes == 0 {
		o.Base.CacheBytes = 2 << 20
	}
	if o.Base.NInodes == 0 {
		o.Base.NInodes = 4096
	}
	o.Base.setDefaults()
}

// DistSystem is a fully assembled sharded metadata service: drive it
// through Cluster's router operations (Lookup, Create, Mkdir, Link,
// Unlink, Rename) or Cluster.Load. It runs either on one serial engine
// or (Opt.EngineWorkers > 1) on a parallel LP group — same protocol,
// byte-identical observables.
type DistSystem struct {
	Opt     DistOptions
	Exec    sim.Exec
	Eng     *sim.Engine  // the serial engine, or the group's LP 0
	Group   *sim.LPGroup // non-nil in parallel mode
	Net     *simnet.Network
	Cluster *dmeta.Cluster
	Obs     *obs.Recorder // non-nil when Base.Observe
}

// NewDist formats and mounts every node (spares included, so splits
// never pause to build a machine) and starts the per-node server loops
// and syncer daemons.
func NewDist(opt DistOptions) (*DistSystem, error) {
	opt.setDefaults()
	pe := opt.Net.Normalized()
	s := &DistSystem{Opt: opt}
	if opt.EngineWorkers > 1 {
		if opt.Base.Observe {
			return nil, fmt.Errorf("fsim: Observe needs the serial engine (the span recorder is single-engine state); drop EngineWorkers or Observe")
		}
		// One LP per node (spares included) plus LP 0 for the client and
		// router; the minimum network delay is the sync lookahead. The
		// labels reach pprof as per-LP goroutine labels.
		lps := make([]*sim.Engine, 1+opt.MaxNodes)
		for i := range lps {
			lps[i] = sim.NewEngine()
			if i == 0 {
				lps[i].Label = "router"
			} else {
				lps[i].Label = fmt.Sprintf("node%d", i)
			}
		}
		g, err := sim.NewLPGroup(lps, pe.Latency, opt.EngineWorkers)
		if err != nil {
			return nil, fmt.Errorf("fsim: EngineWorkers %d: %w", opt.EngineWorkers, err)
		}
		s.Exec, s.Eng, s.Group = g, lps[0], g
		s.Net = simnet.NewParallel(g, pe)
	} else {
		eng := sim.NewEngine()
		s.Exec, s.Eng = eng, eng
		s.Net = simnet.New(eng, pe)
		if opt.Base.Observe {
			s.Obs = obs.New(eng)
		}
	}

	// Per-node stack registry: init procs fill disjoint slots, so the
	// slice is safe to share across concurrently-built nodes.
	stacks := make([]*dmeta.Stack, opt.MaxNodes)
	build := func(p *sim.Proc, id int) (*dmeta.Stack, error) {
		st, err := buildStack(s.Net.Endpoint(id).Host(), opt.Base, s.Obs, p)
		if err != nil {
			return nil, err
		}
		stacks[id-1] = st
		return st, nil
	}
	cl, err := dmeta.New(s.Exec, s.Net, dmeta.Config{
		Nodes:        opt.Nodes,
		MaxNodes:     opt.MaxNodes,
		Seed:         opt.Seed,
		SplitEntries: opt.SplitEntries,
		SplitQueue:   opt.SplitQueue,
		Build:        build,
		Obs:          s.Obs,
	})
	if err != nil {
		if s.Group != nil {
			s.Group.Close()
		}
		return nil, err
	}
	s.Cluster = cl
	for _, st := range stacks {
		st.Cache.StartSyncer()
	}
	return s, nil
}

// buildStack assembles one node's machine on the node's host engine (the
// shared serial engine, or the node's own LP). It runs inside an
// already-live proc (p), unlike New which owns its engine and mounts
// from a fresh one.
func buildStack(eng *sim.Engine, opt Options, rec *obs.Recorder, p *sim.Proc) (*dmeta.Stack, error) {
	parts, err := schemeSetup(&opt)
	if err != nil {
		return nil, err
	}
	dsk := disk.New(*opt.DiskParams, opt.DiskBytes)
	jf := int32(0)
	if opt.Scheme == Journaling {
		jf = opt.JournalFrags
	}
	if _, err := ffs.Format(dsk, ffs.FormatParams{TotalBytes: opt.FSBytes, NInodes: opt.NInodes, JournalFrags: jf}); err != nil {
		return nil, err
	}
	dcfg := parts.dcfg
	dcfg.MaxRetries = opt.MaxRetries
	dcfg.RetryBackoff = opt.RetryBackoff
	dcfg.SpareSectors = opt.SpareSectors
	drv := dev.New(eng, dsk, dcfg)
	if opt.Faults.Enabled() {
		dsk.SetFaults(fault.New(opt.Faults, dsk.Sectors()), opt.SpareSectors)
	}
	cpu := &sim.CPU{}
	c := cache.New(eng, drv, cpu, cache.Config{
		MaxBytes:       opt.CacheBytes,
		CB:             opt.CB,
		SyncerFraction: opt.SyncerFraction,
	})
	fs, err := ffs.Mount(eng, cpu, c, parts.ord,
		ffs.Config{AllocInit: opt.AllocInit, Costs: opt.Costs, Obs: rec}, p)
	if err != nil {
		return nil, err
	}
	return &dmeta.Stack{CPU: cpu, Disk: dsk, Driver: drv, Cache: c, FS: fs}, nil
}

// Run executes fn as a simulated process against the cluster and drives
// the engine until it finishes; returns fn's virtual elapsed time.
func (s *DistSystem) Run(fn func(p *Proc)) Duration {
	start := s.Eng.Now()
	done := false
	s.Exec.Spawn("main", func(p *Proc) {
		fn(p)
		done = true
	})
	s.Exec.RunWhile(func() bool { return !done })
	return s.Eng.Now() - start
}

// SyncAll flushes every node's delayed writes.
func (s *DistSystem) SyncAll() { s.Cluster.SyncAll() }

// Shutdown stops the syncers and server loops, drains the exec, and
// releases the parallel worker pool.
func (s *DistSystem) Shutdown() {
	s.Cluster.Shutdown()
	if s.Group != nil {
		s.Group.Close()
	}
}

// Crash runs the cluster to virtual time t, power-fails every node
// simultaneously, and returns the per-node surviving media images.
func (s *DistSystem) Crash(t Time) [][]byte {
	if t < s.Eng.Now() {
		panic(fmt.Sprintf("fsim: dist crash time %v is in the past", t))
	}
	if s.Group != nil {
		if max := s.Group.NowMax(); t < max {
			// Some LP legitimately ran ahead of LP 0 (bounded by one
			// window, i.e. under the network latency): a cut below its
			// clock would not be mode-independent. Cut at LP 0 time +
			// MinDelay or later and the snapshot is byte-identical at
			// every worker count.
			panic(fmt.Sprintf("fsim: dist crash time %v precedes a parallel LP clock %v; cut at Now()+Net.MinDelay() or later", t, max))
		}
	}
	s.Exec.RunUntil(t)
	imgs := s.Cluster.Crash(t)
	if s.Group != nil {
		s.Group.Close()
	}
	return imgs
}
