package fsim

import (
	"testing"

	"metaupdate/internal/dmeta"
)

// TestDistParallelWidth measures the per-round active-LP distribution of
// the 16-node benchmark cell (run with -v for the histogram) and asserts
// the cluster actually exposes parallelism to the window scheduler: an
// average of at least 2 active LPs per round, with most rounds
// multi-active. A regression here — say, a protocol change that
// serializes all traffic through the router LP — would silently turn the
// PDES engine into pure overhead long before any wall-clock benchmark
// noticed on a busy CI runner. (Measured on the benchmark cell: ~5.9
// average active LPs, ~97% of rounds multi-active — the speedup ceiling
// BENCH_4.json's scaling note derives from.)
func TestDistParallelWidth(t *testing.T) {
	s, err := NewDist(DistOptions{
		Base:  Options{Scheme: SoftUpdates},
		Nodes: 16, Seed: 99,
		EngineWorkers: 2,
	})
	if err != nil {
		t.Fatalf("NewDist: %v", err)
	}
	defer s.Shutdown()
	g := s.Group
	nLP := 1 + s.Opt.MaxNodes
	var rounds, activeSum, multi int64
	hist := make([]int64, nLP+1)
	g.TraceWindow = func(base, horizon Time) {
		active := 0
		for i := 0; i < nLP; i++ {
			if at, ok := g.LP(i).NextAt(); ok && at < horizon {
				active++
			}
		}
		rounds++
		activeSum += int64(active)
		hist[active]++
		if active >= 2 {
			multi++
		}
	}
	e0 := g.Executed()
	s.Cluster.Load(dmeta.LoadSpec{Clients: 16, Ops: 150, Seed: 99})
	s.SyncAll()
	events := g.Executed() - e0

	avg := float64(activeSum) / float64(rounds)
	multiFrac := float64(multi) / float64(rounds)
	t.Logf("rounds=%d events=%d events/round=%.1f avg-active-LPs=%.2f multi-active=%.1f%%",
		rounds, events, float64(events)/float64(rounds), avg, 100*multiFrac)
	for a, c := range hist {
		if c > 0 {
			t.Logf("  active=%2d: %6d rounds (%.1f%%)", a, c, 100*float64(c)/float64(rounds))
		}
	}
	if avg < 2 {
		t.Errorf("average active LPs per round = %.2f, want >= 2 (cluster has serialized)", avg)
	}
	if multiFrac < 0.5 {
		t.Errorf("only %.1f%% of rounds have >= 2 active LPs, want >= 50%%", 100*multiFrac)
	}
}
