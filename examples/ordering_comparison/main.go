// Ordering comparison: the paper's headline effect in miniature. Create,
// write and remove a batch of small files under each of the five schemes
// and watch where the time goes — synchronous writes (Conventional), driver
// queues (the scheduler schemes), or nowhere at all (Soft Updates,
// No Order).
//
//	go run ./examples/ordering_comparison
package main

import (
	"fmt"
	"log"

	"metaupdate/fsim"
	"metaupdate/internal/workload"
)

const files = 400

func main() {
	fmt.Printf("%d x (create 1KB file), then remove them all\n\n", files)
	fmt.Printf("%-17s %12s %12s %14s %12s\n",
		"Scheme", "create (s)", "remove (s)", "disk requests", "CPU (s)")
	for _, scheme := range fsim.Schemes {
		sys, err := fsim.New(fsim.Options{Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		var createT, removeT fsim.Duration
		sys.Run(func(p *fsim.Proc) {
			dir, err := sys.FS.Mkdir(p, fsim.RootIno, "d")
			if err != nil {
				log.Fatal(err)
			}
			t0 := p.Now()
			if err := workload.CreateFiles(p, sys.FS, dir, files, 1024); err != nil {
				log.Fatal(err)
			}
			createT = p.Now() - t0
			t0 = p.Now()
			if err := workload.RemoveFiles(p, sys.FS, dir, files); err != nil {
				log.Fatal(err)
			}
			removeT = p.Now() - t0
			sys.FS.Sync(p)
		})
		fmt.Printf("%-17s %12.2f %12.2f %14d %12.2f\n",
			scheme, createT.Seconds(), removeT.Seconds(),
			sys.Driver.Trace.Requests(), fsim.Duration(sys.CPU.Used).Seconds())
	}
	fmt.Println("\npaper shape: Conventional pays one or more synchronous writes per operation;")
	fmt.Println("Soft Updates and No Order run at memory speed and coalesce the disk work.")
}
