// Quickstart: assemble a simulated system running soft updates, do some
// file system work, and look at what the disk saw.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"metaupdate/fsim"
)

func main() {
	// A complete machine: 33 MHz-class CPU, HP C2447-class disk, device
	// driver, buffer cache with syncer daemon, and an FFS-like file system
	// mounted with the paper's soft updates mechanism.
	sys, err := fsim.New(fsim.Options{Scheme: fsim.SoftUpdates})
	if err != nil {
		log.Fatal(err)
	}

	elapsed := sys.Run(func(p *fsim.Proc) {
		fs := sys.FS

		// Everything happens in virtual time, deterministically.
		dir, err := fs.Mkdir(p, fsim.RootIno, "project")
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			ino, err := fs.Create(p, dir, fmt.Sprintf("note%d.txt", i))
			if err != nil {
				log.Fatal(err)
			}
			msg := fmt.Sprintf("metadata update %d, ordered by soft updates", i)
			if err := fs.WriteAt(p, ino, 0, []byte(msg)); err != nil {
				log.Fatal(err)
			}
		}

		// Read one back.
		ino, _ := fs.Lookup(p, dir, "note3.txt")
		buf := make([]byte, 128)
		n, _ := fs.ReadAt(p, ino, 0, buf)
		fmt.Printf("note3.txt: %q\n", buf[:n])

		// Rename and remove exercise the classic ordering dependencies.
		if err := fs.Rename(p, dir, "note9.txt", dir, "renamed.txt"); err != nil {
			log.Fatal(err)
		}
		if err := fs.Unlink(p, dir, "note0.txt"); err != nil {
			log.Fatal(err)
		}

		// Make everything durable.
		fs.Sync(p)
	})

	fmt.Printf("\nvirtual elapsed time: %v\n", elapsed)
	fmt.Printf("CPU time consumed:    %v\n", fsim.Duration(sys.CPU.Used))
	fmt.Printf("disk requests:        %d (avg access %.2f ms)\n",
		sys.Driver.Trace.Requests(), sys.Driver.Trace.AvgServiceMS())
	fmt.Printf("cache hits/misses:    %d/%d\n", sys.Cache.Hits, sys.Cache.Misses)
	if sys.Soft != nil {
		fmt.Printf("soft updates:         %d rollbacks, %d cancelled adds, %d workitems\n",
			sys.Soft.Stat.Rollbacks,
			sys.Soft.Stat.CancelledAdds, sys.Soft.Stat.Workitems)
	}
}
