// Sdet: run the software-development-environment benchmark (the paper's
// figure 6) under every scheme at one concurrency level and print the
// throughput plus the per-scheme disk traffic — a compact view of why
// delayed metadata writes win mixed workloads.
//
//	go run ./examples/sdet
package main

import (
	"fmt"
	"log"

	"metaupdate/fsim"
	"metaupdate/internal/workload"
)

const scripts = 4

func main() {
	sdet := workload.DefaultSdet()
	fmt.Printf("Sdet, %d concurrent scripts of %d commands each\n\n", scripts, sdet.CommandsPerScript)
	fmt.Printf("%-17s %14s %14s %12s\n", "Scheme", "scripts/hour", "disk requests", "CPU (s)")
	for _, scheme := range fsim.Schemes {
		sys, err := fsim.New(fsim.Options{Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		var bin fsim.Ino
		sys.Run(func(p *fsim.Proc) {
			bin, err = sdet.SetupBinaries(p, sys.FS, fsim.RootIno)
		})
		if err != nil {
			log.Fatal(err)
		}
		sys.Cache.DropClean() // cold start, as after a boot
		sys.ResetStats()
		_, wall := sys.RunUsers(scripts, func(p *fsim.Proc, u int) {
			if err := sdet.RunScript(p, sys.FS, fsim.RootIno, bin, u); err != nil {
				log.Fatal(err)
			}
		})
		st := sys.CollectStats()
		fmt.Printf("%-17s %14.1f %14d %12.2f\n",
			scheme, float64(scripts)*3600/wall.Seconds(), st.DiskRequests,
			fsim.Duration(st.CPUTime).Seconds())
	}
	fmt.Println("\npaper shape: No Order on top, Soft Updates within a couple of percent,")
	fmt.Println("the scheduler schemes a few percent over Conventional.")
}
