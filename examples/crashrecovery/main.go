// Crash recovery: run the same metadata-heavy workload under soft updates
// and under No Order, pull the plug at the same virtual instant, and fsck
// the wreckage. Soft updates leaves only fsck-repairable damage (leaks,
// over-counts); No Order loses structural integrity.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"
	"log"

	"metaupdate/fsim"
	"metaupdate/internal/fsck"
)

func churn(sys *fsim.System) {
	// Launch the workload but do NOT wait for it: we are going to crash.
	sys.Eng.Spawn("churn", func(p *fsim.Proc) {
		fs := sys.FS
		dir, err := fs.Mkdir(p, fsim.RootIno, "work")
		if err != nil {
			return
		}
		for i := 0; ; i++ {
			name := fmt.Sprintf("f%d", i%50)
			if ino, err := fs.Create(p, dir, name); err == nil {
				fs.WriteAt(p, ino, 0, fsck.MakeStampedData(ino, 4096))
			}
			if i%3 == 2 {
				fs.Unlink(p, dir, fmt.Sprintf("f%d", (i-2)%50))
			}
			if i%7 == 6 {
				fs.Rename(p, dir, name, dir, fmt.Sprintf("r%d", i%50))
			}
		}
	})
}

func crashAndCheck(scheme fsim.Scheme, at fsim.Time) {
	sys, err := fsim.New(fsim.Options{Scheme: scheme})
	if err != nil {
		log.Fatal(err)
	}
	churn(sys)
	img := sys.Crash(at) // power fails mid-flight

	rep := fsck.Check(img)
	fmt.Printf("\n=== %s, crash at %v ===\n", scheme, at)
	fmt.Printf("allocated inodes: %d, referenced fragments: %d\n",
		rep.AllocatedInodes, rep.ReferencedFrags)
	viol := rep.Violations()
	rep2 := rep.Repairables()
	fmt.Printf("integrity violations: %d\n", len(viol))
	for i, f := range viol {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(viol)-5)
			break
		}
		fmt.Printf("  VIOLATION %v\n", f)
	}
	fmt.Printf("fsck-repairable findings: %d\n", len(rep2))
	for i, f := range rep2 {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(rep2)-3)
			break
		}
		fmt.Printf("  repairable %v\n", f)
	}
}

func main() {
	// Crash both systems at the same virtual instant, mid-churn. The
	// syncer daemon sweeps 1/30th of the cache per second, so the first
	// delayed writes reach the disk after roughly half a minute — crash
	// after that, while flushing and churn overlap.
	for _, at := range []fsim.Time{40 * fsim.Second, 75 * fsim.Second} {
		crashAndCheck(fsim.SoftUpdates, at)
		crashAndCheck(fsim.NoOrder, at)
	}
	fmt.Println("\nSoft updates survives any crash instant with only repairable damage;")
	fmt.Println("No Order does not — that is the paper's integrity claim, end to end.")
}
