// Andrew: run the emulated Andrew benchmark (the paper's table 3) under
// all five metadata update schemes and print the per-phase comparison.
//
//	go run ./examples/andrew
package main

import (
	"fmt"
	"log"

	"metaupdate/fsim"
	"metaupdate/internal/workload"
)

func main() {
	fmt.Printf("%-17s %9s %9s %9s %9s %9s %9s\n",
		"Scheme", "MakeDir", "Copy", "ScanDir", "ReadAll", "Compile", "Total")
	for _, scheme := range fsim.Schemes {
		sys, err := fsim.New(fsim.Options{Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		var times workload.AndrewTimes
		sys.Run(func(p *fsim.Proc) {
			times, err = workload.DefaultAndrew().Run(p, sys.FS, fsim.RootIno)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %8.2fs %8.2fs %8.2fs %8.2fs %8.1fs %8.1fs\n",
			scheme,
			times.MakeDir.Seconds(), times.Copy.Seconds(), times.ScanDir.Seconds(),
			times.ReadAll.Seconds(), times.Compile.Seconds(), times.Total().Seconds())
	}
	fmt.Println("\npaper shape: metadata phases (1, 2) favor the non-conventional schemes;")
	fmt.Println("read-only phases (3, 4) are indistinguishable; compile dominates the total.")
}
