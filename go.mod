module metaupdate

go 1.22
