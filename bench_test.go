// Package metaupdate's root benchmarks regenerate each of the paper's
// tables and figures through the testing.B interface, one benchmark per
// exhibit. They run at reduced workload scale so `go test -bench=.`
// completes quickly, with each exhibit's simulation cells fanned out
// across GOMAXPROCS runner workers; the mdsim command runs the same
// experiments at paper scale (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for the paper-vs-measured comparison).
//
// Reported custom metrics are virtual-time results (the simulation's
// deterministic outputs), not wall-clock noise:
//
//	vsec/...    virtual seconds of simulated elapsed time
//	files/vsec  virtual-time throughput
package metaupdate_test

import (
	"fmt"
	"strconv"
	"testing"

	"metaupdate/fsim"
	"metaupdate/internal/harness"
	"metaupdate/internal/workload"
)

// benchScale keeps the full -bench=. sweep around a minute of real time.
const benchScale = harness.Scale(0.1)

// runExperiment executes a harness experiment once per iteration and
// reports the first numeric column of the first and last rows, which are
// the extremes the paper's shape claims are about. Each iteration gets a
// fresh cold runner (GOMAXPROCS-wide), so the measured time is the real
// cost of regenerating the exhibit from scratch — cells fan out across
// cores, but nothing is served from a previous iteration's memo.
func runExperiment(b *testing.B, name string, col int) {
	run := harness.Experiments[name]
	if run == nil {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ReportAllocs()
	var tables []harness.Table
	for i := 0; i < b.N; i++ {
		cfg := harness.Config{Scale: benchScale, Runner: harness.NewRunner(0)}
		tables = run(cfg)
	}
	for _, t := range tables {
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", name)
		}
		first, last := t.Rows[0], t.Rows[len(t.Rows)-1]
		if v, err := strconv.ParseFloat(first[col], 64); err == nil {
			b.ReportMetric(v, "first-row")
		}
		if v, err := strconv.ParseFloat(last[col], 64); err == nil {
			b.ReportMetric(v, "last-row")
		}
	}
}

// Figure 1: ordering-flag semantics under the 4-user copy benchmark.
func BenchmarkFig1FlagSemanticsCopy(b *testing.B) { runExperiment(b, "fig1", 1) }

// Figure 2: ordering-flag semantics under the 1-user remove benchmark.
func BenchmarkFig2FlagSemanticsRemove(b *testing.B) { runExperiment(b, "fig2", 1) }

// Figure 3: -NR / -CB implementation improvements, 4-user copy.
func BenchmarkFig3FlagImplCopy(b *testing.B) { runExperiment(b, "fig3", 1) }

// Figure 4: -NR / -CB implementation improvements, 4-user remove.
func BenchmarkFig4FlagImplRemove(b *testing.B) { runExperiment(b, "fig4", 1) }

// Figure 5: metadata update throughput vs. concurrency, per sub-figure and
// scheme at 4 users (the paper's mid-range point).
func BenchmarkFig5Throughput(b *testing.B) {
	kinds := []struct {
		name string
		kind harness.Fig5Kind
	}{
		{"creates", harness.Fig5Creates},
		{"removes", harness.Fig5Removes},
		{"create-removes", harness.Fig5CreateRemoves},
	}
	total := 1000
	for _, k := range kinds {
		for _, scheme := range fsim.Schemes {
			b.Run(fmt.Sprintf("%s/%s", k.name, scheme), func(b *testing.B) {
				b.ReportAllocs()
				var tput float64
				for i := 0; i < b.N; i++ {
					tput = harness.Fig5Point(fsim.Options{Scheme: scheme}, k.kind, 4, total)
				}
				b.ReportMetric(tput, "files/vsec")
			})
		}
	}
}

// BenchmarkFig5Cell is the hot-path probe: one simulation cell (Soft
// Updates creates at 4 users), no runner, no memoization — the unit of
// work the zero-allocation hot path optimizes. Compare allocs/op across
// commits to catch per-cell allocation regressions.
func BenchmarkFig5Cell(b *testing.B) {
	b.ReportAllocs()
	var tput float64
	for i := 0; i < b.N; i++ {
		tput = harness.Fig5Point(fsim.Options{Scheme: fsim.SoftUpdates}, harness.Fig5Creates, 4, 1000)
	}
	b.ReportMetric(tput, "files/vsec")
}

// Figure 6: Sdet scripts/hour at 4 concurrent scripts per scheme.
func BenchmarkFig6Sdet(b *testing.B) {
	sdet := workload.DefaultSdet()
	sdet.CommandsPerScript = 40
	for _, scheme := range fsim.Schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				sys, err := fsim.New(fsim.Options{Scheme: scheme})
				if err != nil {
					b.Fatal(err)
				}
				var bin fsim.Ino
				sys.Run(func(p *fsim.Proc) {
					bin, err = sdet.SetupBinaries(p, sys.FS, fsim.RootIno)
				})
				if err != nil {
					b.Fatal(err)
				}
				sys.Cache.DropClean()
				_, wall := sys.RunUsers(4, func(p *fsim.Proc, u int) {
					if err := sdet.RunScript(p, sys.FS, fsim.RootIno, bin, u); err != nil {
						b.Fatal(err)
					}
				})
				sys.Shutdown()
				rate = 4 * 3600 / wall.Seconds()
			}
			b.ReportMetric(rate, "scripts/vhour")
		})
	}
}

// Table 1: full scheme comparison, 4-user copy (with/without allocation
// initialization).
func BenchmarkTable1CopyComparison(b *testing.B) { runExperiment(b, "table1", 2) }

// Table 2: full scheme comparison, 4-user remove.
func BenchmarkTable2RemoveComparison(b *testing.B) { runExperiment(b, "table2", 1) }

// Table 3: Andrew benchmark per scheme.
func BenchmarkTable3Andrew(b *testing.B) {
	for _, scheme := range fsim.Schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			b.ReportAllocs()
			var total fsim.Duration
			for i := 0; i < b.N; i++ {
				sys, err := fsim.New(fsim.Options{Scheme: scheme})
				if err != nil {
					b.Fatal(err)
				}
				sys.Run(func(p *fsim.Proc) {
					times, err := workload.DefaultAndrew().Run(p, sys.FS, fsim.RootIno)
					if err != nil {
						b.Fatal(err)
					}
					total = times.Total()
				})
				sys.Shutdown()
			}
			b.ReportMetric(total.Seconds(), "vsec/total")
		})
	}
}

// Section 3.2 ablation: chains de-allocation approaches.
func BenchmarkChainsAblation(b *testing.B) { runExperiment(b, "chains-ablation", 1) }

// Section 3.3 ablation: chains with and without block copying.
func BenchmarkCBAblation(b *testing.B) { runExperiment(b, "cb-ablation", 1) }
